"""The abstract randomized rounding process (Section 3.1, Lemma 3.1) and
its two schemes (Section 3.2)."""

import math
import random

import networkx as nx
import pytest

from repro.domsets.cfds import CFDS
from repro.domsets.covering import CoveringInstance
from repro.errors import InfeasibleSolutionError, RandomnessError
from repro.graphs.generators import regular_graph
from repro.graphs.normalize import normalize_graph
from repro.rounding.abstract import (
    RoundingScheme,
    exact_uncovered_probability,
    execute_rounding,
    expected_output_size,
)
from repro.rounding.coins import fixed_coins, independent_coins, kwise_coins
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme, scheme_for_name


@pytest.fixture
def uniform_regular():
    g = regular_graph(16, 5, seed=2)
    values = {v: 1.0 / 6.0 for v in g.nodes()}
    return g, CoveringInstance.from_graph(g, values)


class TestSchemeValidation:
    def test_requires_p_at_least_x(self, uniform_regular):
        _, inst = uniform_regular
        with pytest.raises(InfeasibleSolutionError):
            RoundingScheme(inst, {u: 0.01 for u in inst.value_vars}, "bad")

    def test_rejects_zero_probability(self, uniform_regular):
        _, inst = uniform_regular
        zero = inst.with_values({u: 0.0 for u in inst.value_vars})
        with pytest.raises(InfeasibleSolutionError):
            RoundingScheme(zero, {u: 0.0 for u in zero.value_vars}, "bad")

    def test_factory(self, uniform_regular):
        _, inst = uniform_regular
        assert scheme_for_name("one-shot", inst, delta_tilde=6).name == "one-shot"
        assert scheme_for_name("factor-two", inst, eps=0.5, r=6.0).name == "factor-two"
        with pytest.raises(InfeasibleSolutionError):
            scheme_for_name("nope", inst)
        with pytest.raises(InfeasibleSolutionError):
            scheme_for_name("one-shot", inst)


class TestOneShotScheme:
    def test_boost_is_log_delta_tilde(self, uniform_regular):
        _, inst = uniform_regular
        scheme = one_shot_scheme(inst, delta_tilde=6)
        boost = math.log(6)
        for u, var in scheme.instance.value_vars.items():
            assert var.x == pytest.approx(min(1.0, boost / 6.0))
            assert scheme.p[u] == pytest.approx(var.x)

    def test_phase_one_values_are_binary(self, uniform_regular):
        _, inst = uniform_regular
        scheme = one_shot_scheme(inst, delta_tilde=6)
        rng = random.Random(0)
        outcome = execute_rounding(scheme, independent_coins(scheme, rng))
        assert set(outcome.phase_one.values()) <= {0.0, 1.0}

    def test_capped_values_deterministic(self):
        g = normalize_graph(nx.star_graph(3))
        inst = CoveringInstance.from_graph(g, {v: 0.9 for v in g.nodes()})
        scheme = one_shot_scheme(inst, delta_tilde=4)
        assert all(p == 1.0 for p in scheme.p.values())
        assert scheme.participating() == []


class TestFactorTwoScheme:
    def test_threshold_partition(self, uniform_regular):
        _, inst = uniform_regular
        scheme = factor_two_scheme(inst, eps=0.5, r=6.0)
        threshold = 2.0 / 6.0
        for u, var in scheme.instance.value_vars.items():
            if var.x < threshold:
                assert scheme.p[u] == 0.5
            else:
                assert scheme.p[u] == 1.0

    def test_success_doubles(self, uniform_regular):
        _, inst = uniform_regular
        scheme = factor_two_scheme(inst, eps=0.5, r=6.0)
        for u in scheme.participating():
            assert scheme.success_value(u) == pytest.approx(
                2.0 * scheme.instance.value_vars[u].x
            )

    def test_requires_r_at_least_4(self, uniform_regular):
        _, inst = uniform_regular
        with pytest.raises(InfeasibleSolutionError):
            factor_two_scheme(inst, eps=0.5, r=2.0)
        with pytest.raises(InfeasibleSolutionError):
            factor_two_scheme(inst, eps=0.0, r=8.0)

    def test_fractionality_after(self, uniform_regular):
        """Lemma 3.1 part 1: output fractionality is min x/p."""
        _, inst = uniform_regular
        scheme = factor_two_scheme(inst, eps=0.5, r=6.0)
        assert scheme.fractionality_after == pytest.approx(
            min(scheme.success_value(u) for u in scheme.instance.value_vars)
        )


class TestExecutionLemma31:
    """Lemma 3.1: feasibility of the output and the expected-size formula."""

    def test_output_always_feasible(self, uniform_regular):
        g, inst = uniform_regular
        scheme = factor_two_scheme(inst, eps=0.5, r=6.0)
        for seed in range(25):
            outcome = execute_rounding(
                scheme, independent_coins(scheme, random.Random(seed))
            )
            cfds = CFDS.fds(g, outcome.projected)
            assert cfds.is_feasible(), f"seed {seed} produced infeasible output"

    def test_expected_size_formula_monte_carlo(self):
        """E[Z] == A + sum Pr(E_v), validated by exact enumeration of the
        per-constraint probabilities and Monte-Carlo over full executions."""
        g = normalize_graph(nx.cycle_graph(6))
        inst = CoveringInstance.from_graph(g, {v: 1.0 / 3.0 for v in g.nodes()})
        scheme = factor_two_scheme(inst, eps=0.2, r=4.0)
        exact = {
            cid: exact_uncovered_probability(scheme, cid)
            for cid in scheme.instance.constraints
        }
        expected = expected_output_size(scheme, exact)
        trials = 4000
        rng = random.Random(7)
        total = 0.0
        for _ in range(trials):
            outcome = execute_rounding(scheme, independent_coins(scheme, rng))
            total += outcome.accounted_size
        assert total / trials == pytest.approx(expected, rel=0.05)

    def test_joined_origins_cover_violations(self, uniform_regular):
        g, inst = uniform_regular
        scheme = one_shot_scheme(inst, delta_tilde=6)
        outcome = execute_rounding(scheme, fixed_coins(
            {u: False for u in scheme.participating()}
        ))
        # With all coins failing, every constraint is violated; each origin
        # joins, and the projection is the all-ones solution.
        assert outcome.joined_origins == set(g.nodes())
        assert all(v == 1.0 for v in outcome.projected.values())

    def test_deterministic_with_fixed_coins(self, uniform_regular):
        _, inst = uniform_regular
        scheme = factor_two_scheme(inst, eps=0.5, r=6.0)
        decisions = {u: (u % 2 == 0) for u in scheme.participating()}
        a = execute_rounding(scheme, fixed_coins(decisions))
        b = execute_rounding(scheme, fixed_coins(decisions))
        assert a.phase_one == b.phase_one
        assert a.joined_origins == b.joined_origins


class TestExactUncoveredOracle:
    def test_fully_covered_is_zero(self):
        g = normalize_graph(nx.path_graph(3))
        inst = CoveringInstance.from_graph(g, {v: 1.0 for v in g.nodes()})
        scheme = one_shot_scheme(inst, delta_tilde=3)
        for cid in inst.constraints:
            assert exact_uncovered_probability(scheme, cid) == 0.0

    def test_single_coin(self):
        g = normalize_graph(nx.Graph())
        g.add_node(0)
        inst = CoveringInstance.from_graph(g, {0: 0.5})
        scheme = RoundingScheme(inst, {0: 0.5}, "manual")
        assert exact_uncovered_probability(scheme, 0) == pytest.approx(0.5)

    def test_enumeration_limit(self, medium_gnp):
        inst = CoveringInstance.from_graph(
            medium_gnp, {v: 0.1 for v in medium_gnp.nodes()}
        )
        scheme = RoundingScheme(
            inst, {u: 0.5 for u in inst.value_vars}, "manual"
        )
        dense = max(
            inst.constraints, key=lambda c: len(inst.constraints[c].members)
        )
        with pytest.raises(InfeasibleSolutionError):
            exact_uncovered_probability(scheme, dense, enum_limit=3)


class TestKWiseCoinsIntegration:
    def test_kwise_capacity_guard(self, uniform_regular):
        _, inst = uniform_regular
        scheme = factor_two_scheme(inst, eps=0.5, r=6.0)
        with pytest.raises(RandomnessError):
            kwise_coins(scheme, k=2, m=2)  # 2^2 = 4 < participants

    def test_kwise_rounding_feasible(self, uniform_regular):
        g, inst = uniform_regular
        scheme = factor_two_scheme(inst, eps=0.5, r=6.0)
        coins = kwise_coins(scheme, k=8, m=12, rng=random.Random(3))
        outcome = execute_rounding(scheme, coins)
        assert CFDS.fds(g, outcome.projected).is_feasible()
