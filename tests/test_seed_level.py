"""Seed-bit-level Lemma 3.4 derandomization (exact, small clusters)."""

import math

import pytest

from repro.analysis.verify import is_dominating_set
from repro.decomposition.ball_carving import carve_decomposition
from repro.derand.estimators import ConstraintEstimator, EstimatorConfig
from repro.derand.seed_level import SeedLevelDerandomizer
from repro.domsets.covering import CoveringInstance
from repro.errors import DerandomizationError
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs.generators import gnp_graph, random_tree
from repro.randomness.kwise import KWiseCoins
from repro.rounding.schemes import one_shot_scheme


def one_shot_setup(graph):
    initial = kmw06_initial_fds(graph, eps=0.5)
    delta_tilde = max(d for _, d in graph.degree()) + 1
    base = CoveringInstance.from_graph(graph, initial.fds.values)
    scheme = one_shot_scheme(base, delta_tilde)
    decomposition = carve_decomposition(graph, separation_k=2)
    return scheme, decomposition, initial


class TestSeedLevel:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_produces_dominating_set(self, seed):
        graph = gnp_graph(30, 0.12, seed=seed)
        scheme, decomposition, _ = one_shot_setup(graph)
        derand = SeedLevelDerandomizer(
            scheme, decomposition, config=EstimatorConfig(mode="exact-product")
        )
        result = derand.run()
        ds = {o for o, x in result.outcome.projected.items() if x >= 1 - 1e-9}
        assert is_dominating_set(graph, ds)

    def test_budget_invariant(self):
        graph = gnp_graph(28, 0.15, seed=2)
        scheme, decomposition, _ = one_shot_setup(graph)
        result = SeedLevelDerandomizer(
            scheme, decomposition, config=EstimatorConfig(mode="exact-product")
        ).run()
        assert result.realized_size <= result.initial_estimate + 1e-6

    def test_decisions_reconstructable_from_seeds(self):
        """The recorded per-cluster seeds regenerate the committed coins —
        i.e. the output really is a function of the shared seeds alone."""
        graph = gnp_graph(26, 0.15, seed=3)
        scheme, decomposition, _ = one_shot_setup(graph)
        result = SeedLevelDerandomizer(
            scheme, decomposition, config=EstimatorConfig(mode="exact-product")
        ).run()
        for record in result.records:
            if record.method != "seed":
                continue
            family = KWiseCoins(k=record.k, m=record.m, seed_bits=record.seed_bits)
            scale = 1 << record.m
            for i, u in enumerate(record.members):
                numerator = int(scheme.p[u] * scale)
                assert result.decisions[u] == family.coin(i, numerator)
        assert result.clusters_via_seed >= 1

    def test_seed_usage_reported(self):
        graph = random_tree(24, seed=4)
        scheme, decomposition, _ = one_shot_setup(graph)
        result = SeedLevelDerandomizer(scheme, decomposition).run()
        assert {r.method for r in result.records} <= {"seed", "coin-fallback"}
        assert result.clusters_via_seed + result.clusters_via_fallback == len(result.records)
        # Every participating variable got a decision from some record.
        covered = {u for r in result.records for u in r.members}
        assert covered == set(result.decisions)

    def test_fallback_engages_for_tiny_budget(self):
        graph = gnp_graph(26, 0.2, seed=5)
        scheme, decomposition, _ = one_shot_setup(graph)
        result = SeedLevelDerandomizer(
            scheme, decomposition, max_seed_bits=0
        ).run()
        assert result.clusters_via_seed == 0
        assert result.clusters_via_fallback >= 1
        ds = {o for o, x in result.outcome.projected.items() if x >= 1 - 1e-9}
        assert is_dominating_set(graph, ds)

    def test_quality_close_to_coin_level(self):
        """Seed-level and coin-level land within the same Lemma 3.8 budget."""
        graph = gnp_graph(30, 0.14, seed=6)
        scheme, decomposition, initial = one_shot_setup(graph)
        seed_result = SeedLevelDerandomizer(
            scheme, decomposition, config=EstimatorConfig(mode="exact-product")
        ).run()
        from repro.derand.decomposition_based import one_shot_via_decomposition

        coin_result = one_shot_via_decomposition(
            graph, initial.fds.values, decomposition=decomposition
        )
        size_seed = sum(
            1 for x in seed_result.outcome.projected.values() if x >= 1 - 1e-9
        )
        size_coin = sum(
            1 for x in coin_result.values.values() if x >= 1 - 1e-9
        )
        delta_tilde = max(d for _, d in graph.degree()) + 1
        bound = math.log(delta_tilde) * initial.raised_size + \
            graph.number_of_nodes() / delta_tilde + 1.0
        assert size_seed <= bound
        assert size_coin <= bound

    def test_deterministic(self):
        graph = gnp_graph(24, 0.16, seed=7)
        scheme, decomposition, _ = one_shot_setup(graph)
        a = SeedLevelDerandomizer(scheme, decomposition).run()
        b = SeedLevelDerandomizer(scheme, decomposition).run()
        assert a.decisions == b.decisions
        assert [r.seed_bits for r in a.records] == [r.seed_bits for r in b.records]


class TestPhiGiven:
    def test_matches_sequential_fixing(self):
        coins = {1: (1.0, 0.3), 2: (1.0, 0.5), 3: (1.0, 0.7)}
        est = ConstraintEstimator(
            0, 1.0, 0.0, dict(coins), EstimatorConfig(mode="exact-product")
        )
        joint = est.phi_given({1: False, 2: False})
        est.fix(1, False)
        est.fix(2, False)
        assert est.phi() == pytest.approx(joint)

    def test_success_covers(self):
        est = ConstraintEstimator(
            0, 1.0, 0.0, {1: (1.0, 0.3), 2: (1.0, 0.5)},
            EstimatorConfig(mode="exact-product"),
        )
        assert est.phi_given({1: True}) == 0.0

    def test_chernoff_joint(self):
        coins = {1: (0.3, 0.5), 2: (0.3, 0.5), 3: (0.3, 0.5)}
        est = ConstraintEstimator(
            0, 1.0, 0.0, dict(coins), EstimatorConfig(mode="chernoff")
        )
        joint = est.phi_given({1: True, 2: False})
        est.fix(1, True)
        est.fix(2, False)
        assert est.phi() == pytest.approx(joint, abs=1e-9)

    def test_unknown_coin_rejected(self):
        est = ConstraintEstimator(
            0, 1.0, 0.0, {1: (1.0, 0.3)}, EstimatorConfig(mode="exact-product")
        )
        with pytest.raises(DerandomizationError):
            est.phi_given({9: True})
