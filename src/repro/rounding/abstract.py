"""Abstract randomized rounding process (paper Section 3.1).

Input: a covering instance with values ``x(u)`` and per-variable rounding
probabilities ``p(u) >= x(u)``.

* Phase one: every variable independently becomes ``X_u = x(u)/p(u)`` with
  probability ``p(u)`` and ``0`` otherwise (variables with ``p(u) = 1`` keep
  their value deterministically — they "do not take part in the rounding").
* Phase two: every constraint that is violated after phase one makes its
  origin join the solution with value 1.

Lemma 3.1 gives (1) feasibility of the output with fractionality
``min_u x(u)/p(u)`` and (2) expected size ``A + sum_v Pr(E_v)``; both are
exercised directly by the test-suite via :func:`execute_rounding` and
:func:`expected_output_size`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Set, Tuple

from repro.domsets.covering import CoveringInstance
from repro.errors import InfeasibleSolutionError


@dataclass(frozen=True)
class RoundingScheme:
    """A covering instance paired with rounding probabilities.

    ``instance`` already carries the boosted values (``min(1, ln(D~) x')``
    for one-shot, ``min(1, (1+eps) x')`` for factor-two); ``p`` maps every
    variable id to its rounding probability.
    """

    instance: CoveringInstance
    p: Mapping[int, float]
    name: str
    #: scheme parameters, kept for traceability in experiment output
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for u, var in self.instance.value_vars.items():
            pu = self.p.get(u, 1.0)
            if not 0.0 < pu <= 1.0:
                raise InfeasibleSolutionError(
                    f"probability p({u}) = {pu} outside (0, 1]"
                )
            if pu + 1e-12 < var.x:
                raise InfeasibleSolutionError(
                    f"scheme requires p(u) >= x(u); var {u} has p {pu} < x {var.x}"
                )

    def success_value(self, u: int) -> float:
        """``x(u)/p(u)``: the variable's value if its coin succeeds."""
        var = self.instance.value_vars[u]
        pu = self.p.get(u, 1.0)
        return var.x / pu if pu > 0 else 0.0

    def participating(self) -> List[int]:
        """Variables that flip a real coin (``p not in {0, 1}`` and x > 0)."""
        return sorted(
            u
            for u, var in self.instance.value_vars.items()
            if 0.0 < self.p.get(u, 1.0) < 1.0 and var.x > 0.0
        )

    @property
    def fractionality_after(self) -> float:
        """``min_u x(u)/p(u)`` over non-zero variables (Lemma 3.1 part 1)."""
        vals = [
            self.success_value(u)
            for u, var in self.instance.value_vars.items()
            if var.x > 0
        ]
        return min(vals) if vals else float("inf")


@dataclass
class RoundingOutcome:
    """Result of executing both phases of the process."""

    phase_one: Dict[int, float]
    violated_constraints: List[int]
    joined_origins: Set[int]
    projected: Dict[int, float]
    #: per-copy size (counts every violated constraint's join weight, which
    #: is the quantity the paper's expectation bounds control)
    accounted_size: float

    def origin_set(self, tol: float = 1e-9) -> Set[int]:
        """Origins with final value 1 (integral solutions only)."""
        return {o for o, x in self.projected.items() if x >= 1.0 - tol}


def execute_rounding(
    scheme: RoundingScheme, coin: Callable[[int], bool]
) -> RoundingOutcome:
    """Run phase one with the supplied coins and phase two deterministically.

    ``coin(u)`` is consulted only for participating variables; it may be a
    true RNG, a k-wise independent generator, or the deterministic decisions
    produced by the conditional-expectation engine.
    """
    inst = scheme.instance
    phase_one: Dict[int, float] = {}
    for u, var in inst.value_vars.items():
        pu = scheme.p.get(u, 1.0)
        if var.x <= 0.0:
            phase_one[u] = 0.0
        elif pu >= 1.0:
            phase_one[u] = var.x
        else:
            phase_one[u] = scheme.success_value(u) if coin(u) else 0.0

    violated = inst.violations(phase_one)
    joined = {inst.constraints[cid].origin for cid in violated}
    projected = inst.project(phase_one, joined)

    accounted = sum(
        inst.value_vars[u].weight * x for u, x in phase_one.items()
    ) + sum(inst.constraints[cid].join_weight for cid in violated)
    return RoundingOutcome(
        phase_one=phase_one,
        violated_constraints=sorted(violated),
        joined_origins=joined,
        projected=projected,
        accounted_size=accounted,
    )


def expected_output_size(
    scheme: RoundingScheme, uncovered_probabilities: Mapping[int, float]
) -> float:
    """Lemma 3.1 part 2: ``A + sum_v Pr(E_v)`` (weighted).

    ``uncovered_probabilities`` maps constraint id to (an upper bound on)
    the probability that the constraint is violated after phase one.
    """
    a = scheme.instance.size()
    penalty = sum(
        scheme.instance.constraints[cid].join_weight * pr
        for cid, pr in uncovered_probabilities.items()
    )
    return a + penalty


def exact_uncovered_probability(
    scheme: RoundingScheme, cid: int, enum_limit: int = 20
) -> float:
    """Exact ``Pr(E_v)`` for one constraint by enumerating coin outcomes.

    Exponential in the number of participating members — a test oracle for
    small instances, not a production path.
    """
    inst = scheme.instance
    cn = inst.constraints[cid]
    deterministic = 0.0
    coins: List[Tuple[float, float]] = []  # (success value, probability)
    for u in cn.members:
        var = inst.value_vars[u]
        pu = scheme.p.get(u, 1.0)
        if var.x <= 0.0:
            continue
        if pu >= 1.0:
            deterministic += var.x
        else:
            coins.append((var.x / pu, pu))
    if deterministic >= cn.c - 1e-12:
        return 0.0
    if len(coins) > enum_limit:
        raise InfeasibleSolutionError(
            f"constraint {cid} has {len(coins)} coins, enumeration limit {enum_limit}"
        )
    total = 0.0
    for mask in range(1 << len(coins)):
        prob = 1.0
        sum_x = deterministic
        for i, (w, p) in enumerate(coins):
            if mask >> i & 1:
                prob *= p
                sum_x += w
            else:
                prob *= 1.0 - p
        if sum_x < cn.c - 1e-12:
            total += prob
    return total
