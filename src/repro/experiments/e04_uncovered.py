"""E4 — Lemmas 3.6 / 3.7: uncovered probabilities after phase one.

Monte-Carlo estimates of ``Pr(E_v)`` (a constraint is violated after the
first rounding phase) for both schemes, with fully independent coins and
with ``k``-wise independent coins from a shared seed (the Lemma 3.3
machinery).  Claims reproduced:

* one-shot (Lemma 3.6): mean uncovered fraction <= ``1/Delta~`` for
  ``k >= F`` (and for full independence);
* factor-two (Lemma 3.7): with admissible ``(eps, r)`` the uncovered
  fraction is bounded by ``1/Delta~^4`` — empirically it is essentially 0;
  the table reports the Chernoff pessimistic-estimator mass
  ``sum_v phi_v / n`` as the analytic comparison column.
"""

from __future__ import annotations

import math
import random

from repro.derand.conditional import ConditionalExpectationEngine
from repro.derand.estimators import EstimatorConfig
from repro.domsets.covering import CoveringInstance
from repro.experiments.harness import ExperimentReport
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs.generators import gnp_graph, regular_graph
from repro.rounding.abstract import execute_rounding
from repro.rounding.coins import independent_coins, kwise_coins
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme

COLUMNS = [
    "scheme", "graph", "Delta", "coins", "trials", "mean_uncovered",
    "bound", "estimator_mass", "within",
]


def _mc_uncovered(scheme, coin_factory, trials: int) -> float:
    total = 0.0
    num_constraints = scheme.instance.num_constraints
    for t in range(trials):
        outcome = execute_rounding(scheme, coin_factory(t))
        total += len(outcome.violated_constraints) / num_constraints
    return total / trials


def _estimator_mass(scheme, mode: str) -> float:
    engine = ConditionalExpectationEngine(scheme, EstimatorConfig(mode=mode))
    return sum(est.phi() for est in engine.estimators.values()) / max(
        1, scheme.instance.num_constraints
    )


def run(fast: bool = True, trials: int | None = None, seed: int = 5) -> ExperimentReport:
    trials = trials or (60 if fast else 300)
    report = ExperimentReport(
        experiment="E4",
        claim="Lemmas 3.6/3.7: Pr(uncovered) <= 1/D~ (one-shot), <= 1/D~^4 (factor-two)",
        columns=COLUMNS,
    )
    graphs = [
        ("gnp-60", gnp_graph(60, 0.1, seed=seed)),
        ("regular-64", regular_graph(64, 8, seed=seed)),
    ]
    rng = random.Random(seed)

    for name, graph in graphs:
        delta_tilde = max(d for _, d in graph.degree()) + 1
        initial = kmw06_initial_fds(graph, eps=0.5)
        values = initial.fds.values
        base = CoveringInstance.from_graph(graph, values)

        # --- one-shot (Lemma 3.6): bound 1/Delta~ -----------------------
        scheme = one_shot_scheme(base, delta_tilde)
        bound = 1.0 / delta_tilde
        f_inv = int(round(1.0 / initial.fds.fractionality)) + 1
        coin_cases = [
            ("independent", lambda t: independent_coins(
                scheme, random.Random(rng.randrange(2 ** 30) + t))),
            (f"k={min(f_inv, 40)}-wise", lambda t: kwise_coins(
                scheme, k=min(f_inv, 40), m=16,
                rng=random.Random(rng.randrange(2 ** 30) + t))),
        ]
        for coin_name, factory in coin_cases:
            mean = _mc_uncovered(scheme, factory, trials)
            mass = _estimator_mass(scheme, "exact-product")
            report.add_row(
                scheme="one-shot",
                graph=name,
                Delta=delta_tilde - 1,
                coins=coin_name,
                trials=trials,
                mean_uncovered=f"{mean:.4f}",
                bound=f"{bound:.4f}",
                estimator_mass=f"{mass:.4f}",
                within=mean <= bound * 1.5 + 0.02,
            )
            report.check("one_shot_bound", mean <= bound * 1.5 + 0.02)

        # --- factor-two (Lemma 3.7): bound 1/Delta~^4 -------------------
        # Admissible parameters: r >= 256 eps^-3 ln(D~) means eps must be
        # large at laptop-scale r; we report the regime the instance admits.
        r = 1.0 / initial.fds.fractionality
        eps2 = min(1.0, (256.0 * max(1.0, math.log(delta_tilde)) / r) ** (1.0 / 3.0))
        ft = factor_two_scheme(base, eps2, r)
        bound4 = 1.0 / delta_tilde ** 4
        mean = _mc_uncovered(
            ft, lambda t: independent_coins(ft, random.Random(rng.randrange(2 ** 30) + t)), trials
        )
        mass = _estimator_mass(ft, "chernoff")
        report.add_row(
            scheme="factor-two",
            graph=name,
            Delta=delta_tilde - 1,
            coins=f"independent eps={eps2:.2f}",
            trials=trials,
            mean_uncovered=f"{mean:.5f}",
            bound=f"{bound4:.2e}",
            estimator_mass=f"{mass:.2e}",
            within=mean <= max(bound4, 0.02),
        )
        report.check("factor_two_small", mean <= max(bound4 * 10, 0.02))
    report.notes.append(
        "factor-two eps is derived from the instance's r via Lemma 3.7's "
        "admissibility; estimator_mass is the analytic Chernoff budget "
        "the derandomization preserves"
    )
    return report
