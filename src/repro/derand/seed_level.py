"""Seed-bit-level derandomization — Lemma 3.4 implemented verbatim.

The paper's network-decomposition route does *not* fix coins directly: each
cluster shares a random seed of ``K`` fair bits, expands it into k-wise
independent biased coins for its members (Lemma 3.3), and the cluster leader
fixes the seed *bit by bit* with the method of conditional expectations,
aggregating the conditional values over the cluster's inclusive neighborhood.

This module implements exactly that for clusters whose participating-member
count admits exhaustive enumeration of seed completions (``K = k * m`` bits,
``2^K`` candidate seeds).  The conditional expectation

``E[U | b_1..b_j]  =  mean over completions of  U(coins(seed))``

is computed *exactly*: for a fully determined candidate seed the cluster's
coins are determined, and the objective's dependence on other clusters'
still-random coins stays in closed product form
(:meth:`~repro.derand.estimators.ConstraintEstimator.phi_given`).  No
independence assumption is made about the in-cluster coins — the enumeration
*is* the k-wise distribution — so every inequality in the proof of Lemma 3.4
is reproduced, not approximated.

Clusters with too many participants for enumeration fall back to the
coin-level fixing documented in DESIGN.md §3 item 3 (a seed of one symbol
per member, strictly more independence); the result records how many
clusters took which path.

This is a fidelity demonstrator, deliberately exponential in the seed
length; the production route is :mod:`repro.derand.decomposition_based`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.decomposition.cluster_graph import NetworkDecomposition
from repro.derand.estimators import ConstraintEstimator, EstimatorConfig
from repro.errors import DerandomizationError
from repro.randomness.kwise import KWiseCoins, seed_bits_required
from repro.rounding.abstract import RoundingOutcome, RoundingScheme, execute_rounding
from repro.rounding.coins import fixed_coins

#: Objective non-increase tolerance (mirrors the engine's).
_TOL = 1e-7


@dataclass
class ClusterSeedRecord:
    """Provenance of one cluster's derandomization."""

    cluster_id: int
    members: List[int]
    method: str  # "seed" or "coin-fallback"
    seed_bits: List[int] = field(default_factory=list)
    k: int = 0
    m: int = 0


@dataclass
class SeedLevelResult:
    """Outcome of the seed-level run."""

    outcome: RoundingOutcome
    decisions: Dict[int, bool]
    initial_estimate: float
    final_estimate: float
    trajectory: List[float]
    records: List[ClusterSeedRecord]

    @property
    def realized_size(self) -> float:
        return self.outcome.accounted_size

    @property
    def clusters_via_seed(self) -> int:
        return sum(1 for r in self.records if r.method == "seed")

    @property
    def clusters_via_fallback(self) -> int:
        return sum(1 for r in self.records if r.method == "coin-fallback")


class SeedLevelDerandomizer:
    """Runs Lemma 3.4's per-cluster seed fixing over a 2-hop decomposition.

    Parameters
    ----------
    m:
        Field degree: coin probabilities are snapped down onto the ``2^-m``
        grid (the transmittable grid of Lemma 3.3); a cluster supports up to
        ``2^m`` participating members.
    k:
        Independence parameter of the per-cluster generator (capped at the
        member count; the seed has ``min(k, members) * m`` bits).
    max_seed_bits:
        Enumeration cap: clusters needing more seed bits fall back to
        coin-level fixing.
    """

    def __init__(
        self,
        scheme: RoundingScheme,
        decomposition: NetworkDecomposition,
        m: int = 4,
        k: int = 3,
        max_seed_bits: int = 14,
        config: EstimatorConfig | None = None,
    ):
        self.scheme = scheme
        self.decomposition = decomposition
        self.m = m
        self.k = k
        self.max_seed_bits = max_seed_bits
        self.config = config or EstimatorConfig()
        inst = scheme.instance

        self._ex: Dict[int, float] = {}
        self._weight: Dict[int, float] = {}
        self._coin: Dict[int, Tuple[float, float]] = {}
        for u, var in inst.value_vars.items():
            pu = scheme.p.get(u, 1.0)
            self._weight[u] = var.weight
            if var.x <= 0.0:
                self._ex[u] = 0.0
            elif pu >= 1.0:
                self._ex[u] = var.x
            else:
                self._coin[u] = (var.x / pu, pu)
                self._ex[u] = var.x
        self.estimators: Dict[int, ConstraintEstimator] = {}
        for cid, cn in inst.constraints.items():
            deterministic = 0.0
            free: Dict[int, Tuple[float, float]] = {}
            for u in cn.members:
                var = inst.value_vars[u]
                pu = scheme.p.get(u, 1.0)
                if var.x <= 0.0:
                    continue
                if pu >= 1.0:
                    deterministic += var.x
                else:
                    free[u] = (var.x / pu, pu)
            self.estimators[cid] = ConstraintEstimator(
                cid, cn.c, deterministic, free, self.config
            )
        self.decisions: Dict[int, bool] = {}

    # -- objective bookkeeping ------------------------------------------------

    def objective(self) -> float:
        inst = self.scheme.instance
        total = sum(self._weight[u] * ex for u, ex in self._ex.items())
        for cid, est in self.estimators.items():
            total += inst.constraints[cid].join_weight * est.phi()
        return total

    def _commit(self, u: int, success: bool) -> None:
        self.decisions[u] = success
        w, _p = self._coin[u]
        self._ex[u] = w if success else 0.0
        for cid in self.scheme.instance.var_constraints[u]:
            self.estimators[cid].fix(u, success)

    # -- per-cluster machinery --------------------------------------------------

    def _cluster_phi_sum(self, members: List[int], coins: Dict[int, bool]) -> float:
        """Objective slice that depends on this cluster's coins, for one
        complete in-cluster coin assignment."""
        inst = self.scheme.instance
        total = 0.0
        for u in members:
            w, _p = self._coin[u]
            total += self._weight[u] * (w if coins[u] else 0.0)
        touched = sorted(
            {cid for u in members for cid in inst.var_constraints[u]}
        )
        for cid in touched:
            est = self.estimators[cid]
            relevant = {u: coins[u] for u in members if est.involves(u)}
            total += inst.constraints[cid].join_weight * est.phi_given(relevant)
        return total

    def _slice_under_current_state(self, members: List[int]) -> float:
        """The same objective slice evaluated from the current (independent
        coin) estimator state — the baseline the global objective carries."""
        inst = self.scheme.instance
        total = sum(self._weight[u] * self._ex[u] for u in members)
        touched = sorted(
            {cid for u in members for cid in inst.var_constraints[u]}
        )
        for cid in touched:
            total += inst.constraints[cid].join_weight * self.estimators[cid].phi()
        return total

    def _fix_cluster_by_seed(
        self, members: List[int]
    ) -> Tuple[List[int], int, int, float, float]:
        """Exhaustively derandomize one cluster's shared seed.

        Returns ``(seed bits, k, m, kwise_mean_slice, realized_slice)``.
        Probabilities are snapped *down* onto the 2^-m grid; a zero-snapped
        probability makes the coin a deterministic failure (numerator 0).
        The bit-by-bit choice is an *exact* method of conditional
        expectations under the k-wise seed distribution, so
        ``realized <= kwise_mean`` always (checked by the caller).
        """
        k = max(1, min(self.k, len(members)))
        m = self.m
        bits_total = seed_bits_required(k, m)
        order = 1 << m
        numerators = {
            u: int(self._coin[u][1] * order) for u in members
        }
        index_of = {u: i for i, u in enumerate(members)}

        # Precompute the objective slice for every candidate seed.
        slice_of: List[float] = []
        for seed_int in range(1 << bits_total):
            bits = [(seed_int >> (bits_total - 1 - i)) & 1 for i in range(bits_total)]
            family = KWiseCoins(k=k, m=m, seed_bits=bits)
            coins = {
                u: family.coin(index_of[u], numerators[u]) for u in members
            }
            slice_of.append(self._cluster_phi_sum(members, coins))
        kwise_mean = sum(slice_of) / len(slice_of)

        # Fix bits left to right by exact conditional expectation.
        chosen_prefix = 0
        for j in range(bits_total):
            remaining = bits_total - (j + 1)
            sums = [0.0, 0.0]
            for b in (0, 1):
                prefix = (chosen_prefix << 1) | b
                base = prefix << remaining
                total = 0.0
                for completion in range(1 << remaining):
                    total += slice_of[base | completion]
                sums[b] = total / (1 << remaining)
            chosen_prefix = (chosen_prefix << 1) | (1 if sums[1] < sums[0] else 0)
        realized = slice_of[chosen_prefix]

        bits = [(chosen_prefix >> (bits_total - 1 - i)) & 1 for i in range(bits_total)]
        family = KWiseCoins(k=k, m=m, seed_bits=bits)
        for u in members:
            self._commit(u, family.coin(index_of[u], numerators[u]))
        return bits, k, m, kwise_mean, realized

    def _fix_cluster_by_coins(self, members: List[int]) -> None:
        """Coin-level fallback (the DESIGN.md §3 substitution)."""
        inst = self.scheme.instance
        for u in members:
            w, _p = self._coin[u]
            succ = self._weight[u] * w
            fail = 0.0
            for cid in inst.var_constraints[u]:
                jw = inst.constraints[cid].join_weight
                est = self.estimators[cid]
                succ += jw * est.phi_if(u, True)
                fail += jw * est.phi_if(u, False)
            self._commit(u, succ < fail)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SeedLevelResult:
        participants = set(self.scheme.participating())
        initial = self.objective()
        trajectory = [initial]
        prev = initial
        records: List[ClusterSeedRecord] = []
        # Cross-model slack: the k-wise in-cluster coin distribution may
        # give a (slightly) larger conditional mean than the independent
        # product baseline the global objective carries; Lemma 3.4's
        # guarantee is stated against the k-wise expectation, so the budget
        # accumulates exactly that gap.
        kwise_slack = 0.0

        for color_class in self.decomposition.color_classes():
            for cluster in color_class:
                members = sorted(
                    u for u in cluster.members
                    if u in participants and u not in self.decisions
                )
                if not members:
                    continue
                this_slack = 0.0
                k = max(1, min(self.k, len(members)))
                bits_needed = seed_bits_required(k, self.m)
                if bits_needed <= self.max_seed_bits and len(members) <= (1 << self.m):
                    baseline = self._slice_under_current_state(members)
                    bits, kk, mm, kwise_mean, realized = \
                        self._fix_cluster_by_seed(members)
                    if realized > kwise_mean + _TOL * max(1.0, abs(kwise_mean)):
                        raise DerandomizationError(
                            f"cluster {cluster.id}: realized slice "
                            f"{realized:.9g} exceeds the k-wise mean "
                            f"{kwise_mean:.9g}; supermartingale violated"
                        )
                    this_slack = max(0.0, kwise_mean - baseline)
                    kwise_slack += this_slack
                    records.append(ClusterSeedRecord(
                        cluster.id, members, "seed", bits, kk, mm
                    ))
                else:
                    self._fix_cluster_by_coins(members)
                    records.append(ClusterSeedRecord(
                        cluster.id, members, "coin-fallback"
                    ))
                now = self.objective()
                budget = prev + this_slack
                if now > budget + _TOL * max(1.0, abs(budget)):
                    raise DerandomizationError(
                        f"objective increased on cluster {cluster.id}: "
                        f"{prev:.9g} -> {now:.9g} (allowed slack {this_slack:.3g})"
                    )
                trajectory.append(now)
                prev = now

        missing = [u for u in participants if u not in self.decisions]
        if missing:
            raise DerandomizationError(
                f"{len(missing)} participants not covered by the decomposition"
            )
        outcome = execute_rounding(self.scheme, fixed_coins(self.decisions))
        final = self.objective()
        if outcome.accounted_size > final + _TOL * max(1.0, final):
            raise DerandomizationError(
                f"realized size {outcome.accounted_size:.9g} exceeds final "
                f"estimate {final:.9g}"
            )
        return SeedLevelResult(
            outcome=outcome,
            decisions=dict(self.decisions),
            initial_estimate=initial + kwise_slack,
            final_estimate=final,
            trajectory=trajectory,
            records=records,
        )
