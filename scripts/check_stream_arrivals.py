"""CI smoke gate: records of a pooled grid stream *individually*.

Runs ``python -m repro grid ... --stream`` as a subprocess, timestamps
every JSON record line **on arrival at the reader** (the only vantage
point that can tell per-record streaming from a worker buffering its
group and flushing one burst at unit end), and asserts that each
multi-record dispatch group produced spread-out arrivals:

* every line parses as one record, and the record set is complete;
* for each group (the record's ``plan.unit`` when the adaptive scheduler
  ran, else its (family, program, engine) batch group) with k >= 2
  records, the arrival timestamps are (mostly) pairwise distinct at
  0.1 ms resolution — a group-at-a-time flush lands all k lines in the
  same read burst with near-identical timestamps and fails the gate.

Two arrivals can legitimately coincide: instances of the same size often
terminate in the *same stacked round* (one mask flip services several),
and timing noise on shared CI runners collapses close pairs.  So the
probe grid is deliberately **ragged** — mixed sizes in one fixed-width
plane, so terminations spread across rounds — the distinctness
requirement is ``max(2, ceil(frac * k))`` per group (``--min-frac``,
default 0.5; a group-at-a-time flush produces only one or two distinct
stamps per unit, far below it), and the whole probe retries
(``--retries``, default 3) before declaring failure.

Usage (the CI invocation)::

    python scripts/check_stream_arrivals.py -- \
        python -m repro grid --families gnp --sizes 200,400,800 \
        --programs greedy --engines vector --seeds 0..9 \
        --strategy batch --batch-size 15 --jobs 2 --stream --no-report

(``--no-report`` keeps stdout to pure record lines — machine consumers
like this gate need no trailing table, and the exit code still reflects
per-record success.)

Everything after ``--`` is the grid command; without it the gate runs
the default command above.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import time

DEFAULT_COMMAND = [
    sys.executable,
    "-m",
    "repro",
    "grid",
    "--families", "gnp",
    "--sizes", "200,400,800",
    "--programs", "greedy",
    "--engines", "vector",
    "--seeds", "0..9",
    "--strategy", "batch",
    "--batch-size", "15",
    "--jobs", "2",
    "--stream",
    "--no-report",
]

#: Two arrivals closer than this are considered one burst (seconds).
RESOLUTION_S = 1e-4


def collect_arrivals(command: list) -> list:
    """Run the grid command, returning ``(record, arrival_s)`` pairs.

    Arrival times are measured here, reader-side, when each line becomes
    available on the pipe — not from anything the producer reports.
    """
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        bufsize=1,  # line-buffered reads: a line surfaces as it lands
    )
    arrivals = []
    start = time.perf_counter()
    assert proc.stdout is not None
    for line in proc.stdout:
        stamp = time.perf_counter() - start
        line = line.strip()
        if not line.startswith("{"):
            continue  # the trailing report table, not a record line
        arrivals.append((json.loads(line), stamp))
    proc.wait()
    if proc.returncode != 0:
        stderr = proc.stderr.read() if proc.stderr else ""
        raise RuntimeError(
            f"grid command exited {proc.returncode}:\n{stderr.strip()}"
        )
    return arrivals


def group_key(record: dict) -> object:
    """The streaming group a record belongs to.

    The adaptive scheduler stamps its dispatch unit on every record;
    fixed-planner records fall back to the batch group key (one stacked
    plane per (family, program, engine) group).
    """
    plan = record.get("plan")
    if plan is not None and "unit" in plan:
        return ("unit", plan["unit"])
    cell = record["cell"]
    return ("group", cell["family"], cell["program"], cell["engine"])


def distinct_arrivals(stamps: list) -> int:
    """Number of arrival timestamps separated by more than the resolution."""
    distinct = 0
    last = None
    for stamp in sorted(stamps):
        if last is None or stamp - last > RESOLUTION_S:
            distinct += 1
        last = stamp
    return distinct


def check_once(command: list, min_frac: float) -> list:
    """One probe run; returns a list of failure messages (empty = pass)."""
    arrivals = collect_arrivals(command)
    failures = []
    if not arrivals:
        return ["no record lines arrived on stdout"]
    bad = [rec["key"] for rec, _ in arrivals if not rec.get("ok")]
    if bad:
        failures.append(f"failed records: {bad}")
    groups: dict = {}
    for record, stamp in arrivals:
        groups.setdefault(group_key(record), []).append(stamp)
    multi = {key: stamps for key, stamps in groups.items() if len(stamps) >= 2}
    if not multi:
        failures.append(
            "no multi-record group in the stream — the gate needs a "
            "stacked sweep to probe (check the grid axes)"
        )
    for key, stamps in sorted(multi.items(), key=str):
        k = len(stamps)
        need = max(2, math.ceil(min_frac * k))
        got = distinct_arrivals(stamps)
        status = "ok" if got >= need else "BURST"
        print(
            f"  group {key}: {k} records, {got} distinct arrivals "
            f"(need >= {need}) [{status}]"
        )
        if got < need:
            failures.append(
                f"group {key}: {k} records arrived with only {got} distinct "
                f"timestamps (>= {need} required) — looks like a "
                "group-at-a-time burst, not per-record streaming"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-frac",
        type=float,
        default=0.5,
        help="fraction of a group's records that must have distinct "
        "arrival timestamps (floor 2)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="probe attempts before the gate fails (absorbs CI timing noise)",
    )
    parser.add_argument(
        "command",
        nargs="*",
        help="grid command to probe (after --); default: the pooled "
        "streaming smoke grid",
    )
    args = parser.parse_args()
    command = args.command or DEFAULT_COMMAND

    failures = []
    for attempt in range(1, args.retries + 1):
        print(f"attempt {attempt}/{args.retries}: {' '.join(command)}")
        failures = check_once(command, args.min_frac)
        if not failures:
            print("stream-arrival gate: PASS (records streamed individually)")
            return 0
        for failure in failures:
            print(f"  {failure}")
    print("stream-arrival gate: FAIL", file=sys.stderr)
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
