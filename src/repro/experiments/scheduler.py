"""Adaptive batch scheduler: cost-model planning for ``strategy="batch"``.

The fixed ``batch_size`` chunking the runner shipped with treats every
cell as equally expensive: a width cap of 10 makes one plane out of ten
20-node instances and another out of ten 150-node instances, and under
worker parallelism the second plane stragglers the pool while the first
worker idles.  This module replaces the cap with a **cost model**: each
cell's estimated execution cost is its plane width (``n``), times its
registry round limit, times its program's widest ``MessageSpec`` wire
size — the exact quantity :func:`repro.congest.engine.batched.plane_cost`
defines, chosen because it is deterministic, additive across instances
and strictly monotone in width, rounds and bits.  Groups are then split
to a **target cost** instead of a target width, so every plane carries
roughly the same amount of work regardless of how sizes are mixed.

Three decisions, all deterministic functions of their inputs:

* :func:`estimate_cell_cost` — the per-cell cost.  Round limits come
  from the **calibrated rounds model**: the spec's worst-case
  ``batch_max_rounds`` recipe evaluated on a size proxy (the registered
  recipes are functions of ``n`` only), clamped by an empirical
  per-program estimate where measured data exists (see below); message
  bits from the program's declared :class:`~repro.congest.engine.vector.
  MessageSpec` list with every field charged ``bit_length(n)``.
  Programs whose kernel takes over after round 1 (per-instance scalar
  prologues, e.g. ``lemma310``) are priced, not rejected: the spec's
  ``batch_prologue_rounds`` recipe adds a weighted scalar surcharge on
  top of the plane cost (:func:`estimate_prologue_rounds`).
* :func:`resolve_target_cost` — what ``target_cost="auto"`` negotiates:
  the total stackable cost divided over ``2 * jobs`` planes (the factor
  of two oversubscribes the pool so an early-finishing worker always
  finds another plane instead of idling), and ``0`` — scheduling
  disabled, one plane per group — when there is nothing to parallelize
  (``jobs <= 1`` or no stackable group).
* :func:`adaptive_plan` — the planner.  Cells are grouped exactly like
  the fixed planner (same :attr:`~repro.experiments.runner.GridCell.
  group_key` stacking rules), each group is split greedily at the target
  cost **in cell order** (plans never reorder results), ``batch_size``
  remains honored as a hard width cap for back-compat, and a final
  **tail-steal pass** halves the costliest plane while the pool has
  fewer planes than workers — the static form of stealing an oversized
  group's tail onto an idle worker.

Every unit of the resulting plan carries a scheduler-decision meta block
``{scheduler, target_cost, est_cost, splits, unit}`` which the runner
attaches to each produced record as ``plan`` (plus the measured
``actual_wall_s``), so grid payloads and BENCH artifacts record what the
scheduler decided next to what it cost.

Calibrated rounds
-----------------
The worst-case registry recipes are *proof* limits — greedy's ``8n + 16``
guards termination, but its measured rounds are near-flat in ``n`` (49 at
n=100 vs 69 at n=500 in the committed ``BENCH_scheduler.json`` sweep), so
pricing by the proof limit over-weights large instances by two orders of
magnitude and skews every cost-target split.  The estimator therefore
clamps the recipe with an **empirical rounds table**: per program, the
maximum rounds observed at each measured size (seeded from the committed
benchmark, extendable at runtime via :func:`calibrate_rounds` /
:func:`record_round_sample`), turned into a monotone envelope — running
max over sizes, flat extrapolation beyond the sampled range — and
multiplied by a ×2 safety slack.  ``min(worst_case, slack × envelope)``
keeps the worst-case recipe as the fallback (programs without samples,
tiny sizes where the recipe is already tighter) and keeps
:func:`estimate_cell_cost` monotone in width.  The executor's *enforced*
round limits are untouched — calibration reweights planning only, it can
never make a run fail.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import batchable_programs, program_spec
from repro.congest.engine.batched import plane_cost
from repro.congest.message import FIELD_FRAMING_BITS, MESSAGE_HEADER_BITS

__all__ = [
    "PlanUnit",
    "adaptive_plan",
    "calibrate_rounds",
    "calibrated_round_limit",
    "estimate_cell_cost",
    "estimate_message_bits",
    "estimate_prologue_rounds",
    "estimate_round_limit",
    "record_round_sample",
    "reset_round_calibration",
    "resolve_target_cost",
]

#: A dispatch unit: kind ("cell" | "batch"), cell indices, scheduler meta
#: (``None`` when the fixed planner produced the unit).
PlanUnit = Tuple[str, List[int], Optional[Dict[str, object]]]

#: ``resolve_target_cost`` plans this many planes per worker, so a worker
#: finishing its plane early always finds another instead of idling.
OVERSUBSCRIBE = 2

#: Round-limit fallback (per instance) when a spec carries no recipe.
_FALLBACK_ROUND_FACTOR = 4

#: Cost multiplier for per-instance scalar *prologue* rounds (kernels
#: whose takeover comes after round 1 run each instance's early rounds
#: through the scalar engine before absorbing it into the plane).  A
#: scalar round touches each node through the Python interpreter rather
#: than one vector op, so it is charged a constant factor above a plane
#: round of the same width; the surcharge stays additive and monotone,
#: which is all the split logic needs.
PROLOGUE_COST_WEIGHT = 4


class _SizeProxy:
    """Stand-in for a :class:`~repro.congest.network.Network` of size ``n``.

    The registered ``batch_max_rounds`` recipes are arithmetic in
    ``net.n`` (``8 * net.n + 16`` and the like); evaluating them on this
    proxy prices a cell without generating its graph — planning must stay
    O(cells), not O(edges).
    """

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = int(n)


#: Safety slack multiplied onto the empirical rounds envelope: planning
#: tolerates instances twice as slow as the worst ever measured before
#: the estimate goes stale (and even then only the *split* is affected).
_CALIBRATION_SLACK = 2.0

#: Measured max rounds per (program, n), from the committed
#: ``BENCH_scheduler.json`` 50-seed sweep (seeds 0..49, gnp suite).  The
#: raw samples are intentionally non-monotone (n=800 measured below
#: n=500); :func:`calibrated_round_limit` applies the monotone envelope.
_SEED_ROUND_SAMPLES: Dict[str, Dict[int, int]] = {
    "greedy": {100: 49, 200: 53, 300: 57, 500: 69, 800: 65},
}

#: Live calibration table: the seed samples plus anything recorded at
#: runtime via :func:`record_round_sample` / :func:`calibrate_rounds`.
_ROUND_SAMPLES: Dict[str, Dict[int, int]] = {
    program: dict(samples) for program, samples in _SEED_ROUND_SAMPLES.items()
}


def record_round_sample(program: str, n: int, rounds: int) -> None:
    """Feed one measured round count into the calibration table.

    Samples only ever *raise* the stored per-size maximum — the estimate
    must stay an upper envelope of everything observed.
    """
    samples = _ROUND_SAMPLES.setdefault(str(program), {})
    n = int(n)
    samples[n] = max(samples.get(n, 0), int(rounds))


def calibrate_rounds(records) -> int:
    """Calibrate from finished run records; returns samples ingested.

    Accepts :class:`~repro.api.records.RunRecord` objects or legacy dict
    records (BENCH artifacts read back from disk) — any success record
    with a ``rounds`` metric contributes.
    """
    ingested = 0
    for record in records:
        if not isinstance(record, dict):
            record = record.to_dict()
        metrics = record.get("metrics")
        if not record.get("ok") or not metrics or "rounds" not in metrics:
            continue
        cell = record["cell"]
        record_round_sample(cell["program"], cell["n"], metrics["rounds"])
        ingested += 1
    return ingested


def reset_round_calibration() -> None:
    """Restore the committed seed samples (tests, fresh experiments)."""
    _ROUND_SAMPLES.clear()
    _ROUND_SAMPLES.update(
        {program: dict(samples) for program, samples in _SEED_ROUND_SAMPLES.items()}
    )


def calibrated_round_limit(program: str, n: int) -> Optional[int]:
    """The empirical rounds estimate for planning, or ``None`` (no data).

    Deterministic in the table state: the samples' running-max envelope
    over sizes, read at the smallest sampled size >= ``n`` (flat
    extrapolation beyond the sampled range — measured rounds are
    near-flat in ``n``, which is the whole point), times the safety
    slack.  Non-decreasing in ``n`` by construction, so
    :func:`estimate_cell_cost` stays strictly monotone in width.
    """
    samples = _ROUND_SAMPLES.get(str(program))
    if not samples:
        return None
    envelope = 0
    estimate: Optional[int] = None
    for size in sorted(samples):
        envelope = max(envelope, samples[size])
        if size >= int(n) and estimate is None:
            estimate = envelope
    if estimate is None:
        estimate = envelope  # n beyond the sampled range: flat extrapolation
    return int(math.ceil(_CALIBRATION_SLACK * estimate))


def estimate_round_limit(program: str, n: int, calibrated: bool = True) -> int:
    """The rounds the cost model charges one cell of size ``n``.

    The spec's worst-case recipe evaluated on a size proxy, clamped by
    the calibrated empirical estimate when one exists (``calibrated=
    False`` recovers the pure worst-case figure — the proof limit the
    executor enforces).
    """
    spec = program_spec(program)
    worst: Optional[int] = None
    if spec.batch_max_rounds is not None:
        try:
            worst = int(spec.batch_max_rounds(_SizeProxy(n)))
        except Exception:  # noqa: BLE001 - a recipe needing a real Network
            worst = None
    if worst is None:
        worst = _FALLBACK_ROUND_FACTOR * int(n) + 16
    if calibrated:
        empirical = calibrated_round_limit(program, n)
        if empirical is not None:
            return min(worst, empirical)
    return worst


def estimate_message_bits(program: str, n: int) -> int:
    """Widest per-message wire size of the program's declared specs.

    Every integer field is charged ``bit_length(n)`` — node ids and
    n-bounded counters dominate the registered message families — on top
    of the exact header/framing constants.  Programs without
    ``message_specs`` (non-vectorized) are charged a single one-field
    message; their cells never stack, so the value only prices solo
    fallback units.
    """
    spec = program_spec(program)
    cls = spec.batch_factory or spec.program
    field_bits = max(1, int(n)).bit_length()
    specs = getattr(cls, "message_specs", ()) or ()
    if not specs:
        return MESSAGE_HEADER_BITS + FIELD_FRAMING_BITS + field_bits
    return max(
        MESSAGE_HEADER_BITS + m.arity * (FIELD_FRAMING_BITS + field_bits)
        for m in specs
    )


def estimate_prologue_rounds(program: str, n: int) -> int:
    """Scalar prologue rounds the cost model charges one cell of size ``n``.

    Programs whose kernel takes over after round 1 run each instance's
    opening rounds through the scalar engine before the stacked plane
    absorbs it; the spec's ``batch_prologue_rounds`` recipe (evaluated on
    the same size proxy as the round limit) prices those rounds.  ``0``
    for round-1 takeover programs — the historical behaviour, where the
    plane cost alone was the whole estimate.
    """
    spec = program_spec(program)
    if spec.batch_prologue_rounds is None:
        return 0
    try:
        return max(0, int(spec.batch_prologue_rounds(_SizeProxy(n))))
    except Exception:  # noqa: BLE001 - a recipe needing a real Network
        return 0


def estimate_cell_cost(cell) -> int:
    """Estimated execution cost of one grid cell (exact integer).

    The plane cost (width × rounds × bits) plus the weighted scalar
    prologue surcharge for per-instance late-takeover programs — both
    terms deterministic, additive across cells and monotone in ``n``.
    """
    n = int(cell.n)
    bits = estimate_message_bits(cell.program, n)
    cost = plane_cost([n], [estimate_round_limit(cell.program, n)], [bits])
    prologue = estimate_prologue_rounds(cell.program, n)
    if prologue:
        cost += PROLOGUE_COST_WEIGHT * n * prologue * bits
    return cost


def _stackable_groups(cells) -> Tuple[Dict[tuple, List[int]], List[tuple]]:
    """Group cell indices exactly like the fixed planner does."""
    stackable = set(batchable_programs())
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for i, cell in enumerate(cells):
        batchable = cell.engine == "vector" and cell.program in stackable
        key = ("group",) + cell.group_key if batchable else ("solo", i)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    return groups, order


def resolve_target_cost(cells, jobs: int) -> int:
    """The per-plane cost target ``target_cost="auto"`` negotiates.

    Total stackable cost spread over ``OVERSUBSCRIBE * jobs`` planes;
    ``0`` (adaptive scheduling disabled — one plane per group, the
    in-process optimum) when ``jobs <= 1`` or no group can stack.
    """
    if jobs <= 1:
        return 0
    groups, order = _stackable_groups(cells)
    total = 0
    for key in order:
        if key[0] == "group" and len(groups[key]) >= 2:
            total += sum(estimate_cell_cost(cells[i]) for i in groups[key])
    if total == 0:
        return 0
    planes = OVERSUBSCRIBE * jobs
    return max(1, -(-total // planes))


def _chunk_by_cost(
    indices: List[int],
    costs: List[int],
    target_cost: int,
    batch_size: int,
) -> List[List[int]]:
    """Split one group's indices (in order) at the cost target.

    A chunk closes when adding the next cell would push it past
    ``target_cost`` — a single cell above the target gets a plane of its
    own — or past the ``batch_size`` width cap (0 = uncapped).
    """
    cap = batch_size if batch_size > 0 else len(indices)
    chunks: List[List[int]] = []
    current: List[int] = []
    current_cost = 0
    for index, cost in zip(indices, costs):
        if current and (current_cost + cost > target_cost or len(current) >= cap):
            chunks.append(current)
            current, current_cost = [], 0
        current.append(index)
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def adaptive_plan(
    cells,
    target_cost: int,
    batch_size: int = 0,
    jobs: int = 1,
) -> List[PlanUnit]:
    """Cost-model dispatch plan for one grid run (deterministic).

    Same inputs — cells, target, cap, jobs — always produce the same
    plan.  Chunks preserve cell order within each group and groups keep
    first-occurrence order, so the plan can never reorder results;
    width-1 chunks degrade to plain ``cell`` units exactly like the
    fixed planner's leftovers.
    """
    if target_cost <= 0:
        raise ValueError("adaptive_plan needs a positive target_cost")
    groups, order = _stackable_groups(cells)
    # Per-group chunk lists first, so the steal pass can rebalance across
    # groups before unit indices and meta are finalized.
    chunked: List[Tuple[tuple, List[List[int]], List[int]]] = []
    for key in order:
        indices = groups[key]
        if key[0] == "solo" or len(indices) < 2:
            chunked.append((key, [[i] for i in indices], []))
            continue
        costs = [estimate_cell_cost(cells[i]) for i in indices]
        chunks = _chunk_by_cost(indices, costs, target_cost, batch_size)
        chunked.append((key, chunks, costs))

    def chunk_cost(chunk: List[int]) -> int:
        return sum(estimate_cell_cost(cells[i]) for i in chunk)

    # Tail steal: while the pool would have idle workers, halve the
    # costliest stackable plane (width permitting) so its tail can run
    # concurrently.  batch_size already bounds widths, so halving cannot
    # violate the cap.
    if jobs > 1:
        while True:
            planes = [
                (chunk_cost(chunk), gi, pos, len(chunk))
                for gi, (key, chunks, _) in enumerate(chunked)
                if key[0] == "group"
                for pos, chunk in enumerate(chunks)
                if len(chunk) >= 2
            ]
            splittable = [p for p in planes if p[3] >= 4]
            if len(planes) >= jobs or not splittable:
                break
            _cost, gi, pos, _width = max(
                splittable, key=lambda p: (p[0], -p[1], -p[2])
            )
            chunks = chunked[gi][1]
            victim = chunks[pos]
            half = len(victim) // 2
            chunks[pos : pos + 1] = [victim[:half], victim[half:]]

    plan: List[PlanUnit] = []
    for key, chunks, _costs in chunked:
        splits = len(chunks)
        for chunk in chunks:
            meta: Dict[str, object] = {
                "scheduler": "adaptive",
                "target_cost": int(target_cost),
                "est_cost": chunk_cost(chunk),
                "splits": splits if key[0] == "group" else 1,
                "unit": len(plan),
            }
            kind = "batch" if key[0] == "group" and len(chunk) >= 2 else "cell"
            if kind == "cell":
                for i in chunk:
                    solo_meta = dict(meta, est_cost=estimate_cell_cost(cells[i]))
                    solo_meta["unit"] = len(plan)
                    plan.append(("cell", [i], solo_meta))
            else:
                plan.append(("batch", list(chunk), meta))
    return plan


def _plan_summary(plan: Sequence[PlanUnit]) -> Dict[str, object]:
    """Aggregate view of one plan for payload meta and logging."""
    batch_units = [u for u in plan if u[0] == "batch"]
    est = [int(u[2]["est_cost"]) for u in plan if u[2] is not None]
    return {
        "units": len(plan),
        "batch_units": len(batch_units),
        "widths": [len(u[1]) for u in batch_units],
        "est_cost_max": max(est) if est else 0,
        "est_cost_total": sum(est),
    }
