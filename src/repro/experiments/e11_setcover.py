"""E11 — Section 5 generalization: minimum set cover.

Random set-cover instances (unweighted and weighted): the derandomized
rounding route against the greedy baseline and the LP optimum.  Claims: the
output always covers; its weight stays within ``ln(f)+O(1)`` of the LP
(``f`` = max element frequency); quality tracks greedy.
"""

from __future__ import annotations

import math

from repro.experiments.harness import ExperimentReport
from repro.setcover.instance import random_setcover_instance
from repro.setcover.solve import approx_min_set_cover, greedy_set_cover

COLUMNS = [
    "instance", "elements", "sets", "freq", "lp", "greedy_w", "ours_w",
    "ratio_lp", "bound",
]


def run(fast: bool = True, seed: int = 13) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E11",
        claim="Set cover via the MDS machinery: ln(f)-factor vs LP",
        columns=COLUMNS,
    )
    shapes = [(40, 18, 8, False), (60, 25, 9, True)]
    if not fast:
        shapes += [(120, 50, 10, False), (160, 60, 12, True)]
    for num_elements, num_sets, set_size, weighted in shapes:
        inst = random_setcover_instance(
            num_elements, num_sets, set_size, seed=seed, weighted=weighted
        )
        greedy = greedy_set_cover(inst)
        ours = approx_min_set_cover(inst)
        freq = inst.max_element_frequency
        bound = math.log(max(2, freq)) + 2.0
        ratio = ours.weight / max(ours.lp_optimum, 1e-9)
        name = f"{'w' if weighted else 'u'}-{num_elements}x{num_sets}"
        report.add_row(
            instance=name,
            elements=num_elements,
            sets=num_sets,
            freq=freq,
            lp=round(ours.lp_optimum, 2),
            greedy_w=round(inst.cover_weight(greedy), 2),
            ours_w=round(ours.weight, 2),
            ratio_lp=round(ratio, 2),
            bound=round(bound, 2),
        )
        report.check("covers", inst.is_cover(ours.chosen))
        report.check("within_bound", ratio <= bound + 1e-9)
        report.check(
            "tracks_greedy",
            ours.weight <= 3.0 * inst.cover_weight(greedy) + 2.0,
        )
    return report
