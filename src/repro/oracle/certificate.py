"""The certification ladder: ``certify(graph, ds)`` -> :class:`Certificate`.

The paper's headline is an approximation *guarantee* — yet a measured
``ds_size`` alone certifies nothing.  This module closes the loop: given
a graph and a dominating set (or just its size), it computes the tightest
optimum bound the instance affords and returns a typed certificate with
the measured ratios.

The bound ladder, strongest rung first:

1. **exact** — the branch-and-bound of :mod:`repro.baselines.exact`
   (``n <= exact_node_limit``, search budget so a hard instance cannot
   stall a sweep);
2. **ilp** — HiGHS branch-and-cut (:mod:`repro.oracle.ilp`), wall-clock
   time limited; a proven solve yields OPT, a time-limited one an
   incumbent upper bound;
3. **lp** — the covering-LP optimum (:mod:`repro.fractional.lp`), a
   lower bound on OPT that is always available.

``oracle="auto"`` walks the ladder top-down and records which rung
produced the bound; ``"exact"``/``"ilp"``/``"lp"`` pin a rung.  Every
certificate carries ``ratio_vs_lp`` (the LP bound is computed on all
rungs); ``ratio_vs_opt`` is present exactly when the optimum was proven.

Certificates are memoized in the shared :mod:`repro.oracle.cache` when
the caller supplies a ``cache_key`` (the deterministic topology
identity) — repeat cells return the identical object without re-solving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Optional, Union

import networkx as nx

from repro.analysis.verify import require_dominating_set
from repro.baselines.exact import exact_mds
from repro.domsets.covering import CoveringInstance
from repro.errors import (
    LPError,
    LPInfeasibleError,
    ReproError,
    SearchBudgetExceededError,
)
from repro.fractional.lp import solve_covering_lp
from repro.oracle.cache import oracle_cache
from repro.oracle.ilp import solve_mds_ilp

#: Oracle modes ``certify`` accepts.
ORACLE_MODES = ("auto", "exact", "ilp", "lp")

#: Default ladder knobs: the exact rung covers the test-suite zoo, the
#: search budget bounds its worst case at well under a second, and the
#: ILP time limit keeps a pathological instance from stalling a sweep.
EXACT_NODE_LIMIT = 64
EXACT_SEARCH_BUDGET = 100_000
ILP_TIME_LIMIT_S = 10.0


@dataclass(frozen=True)
class Certificate:
    """A certified quality statement about one dominating set.

    The sandwich ``lp_bound <= opt <= size`` holds whenever ``opt`` is
    present (up to LP solver tolerance); ``ratio_vs_opt`` is ``None``
    exactly when no rung proved the optimum, in which case
    ``ratio_vs_lp`` (always present, always >= ``ratio_vs_opt``) is the
    honest — conservative — quality figure.  ``incumbent`` reports the
    best solution a time-limited ILP found: an upper bound on OPT, never
    used for ratios.
    """

    size: int
    opt: Optional[int]
    lp_bound: float
    ratio_vs_opt: Optional[float]
    ratio_vs_lp: float
    method: str
    status: str
    solve_wall_s: float
    incumbent: Optional[int] = None

    @property
    def proven(self) -> bool:
        """Whether the optimum itself (not just a bound) was certified."""
        return self.opt is not None


def lp_lower_bound(graph: nx.Graph) -> float:
    """The covering-LP optimum of ``graph`` — a lower bound on MDS OPT."""
    if graph.number_of_nodes() == 0:
        return 0.0
    instance = CoveringInstance.from_graph(graph, {v: 0.0 for v in graph.nodes()})
    return solve_covering_lp(instance).optimum


def _ratio(size: int, bound: float) -> float:
    if bound > 0:
        return size / bound
    return 1.0 if size == 0 else math.inf


def certify(
    graph: nx.Graph,
    ds: Union[int, Iterable[int]],
    oracle: str = "auto",
    exact_node_limit: int = EXACT_NODE_LIMIT,
    search_budget: Optional[int] = EXACT_SEARCH_BUDGET,
    time_limit_s: float = ILP_TIME_LIMIT_S,
    cache_key: Optional[tuple] = None,
) -> Certificate:
    """Certify a dominating set against the strongest affordable bound.

    ``ds`` is either the solution set itself (validated for domination
    before anything is solved — certifying an infeasible set would be
    nonsense) or its size (the experiment layer's case: records carry
    ``ds_size``, and the simulation already validated the set).

    With a ``cache_key`` (see
    :func:`repro.oracle.cache.topology_cache_key`), the full certificate
    is memoized on (key, size, oracle knobs): deterministic repeat cells
    return the identical object without re-solving.
    """
    if oracle not in ORACLE_MODES:
        raise ValueError(
            f"unknown oracle mode {oracle!r}; choose from {', '.join(ORACLE_MODES)}"
        )
    if isinstance(ds, int):
        size = ds
    else:
        size = len(require_dominating_set(graph, ds, "certified solution"))

    cache = oracle_cache()
    full_key = None
    if cache_key is not None:
        full_key = (
            cache_key, size, oracle, exact_node_limit, search_budget, time_limit_s,
        )
        cached = cache.lookup(full_key)
        if cached is not None:
            return cached  # type: ignore[return-value]

    certificate = _certify_uncached(
        graph, size, oracle, exact_node_limit, search_budget, time_limit_s
    )
    if full_key is not None:
        cache.store(full_key, certificate)
    return certificate


def _certify_uncached(
    graph: nx.Graph,
    size: int,
    oracle: str,
    exact_node_limit: int,
    search_budget: Optional[int],
    time_limit_s: float,
) -> Certificate:
    start = perf_counter()
    n = graph.number_of_nodes()

    # The LP rung runs on every ladder walk: it is cheap, always
    # available, and ``ratio_vs_lp`` is part of every certificate.  An
    # infeasible covering LP is an instance-level fact and propagates;
    # a numerical LP failure only degrades the certificate when no
    # stronger rung supplies the optimum to stand in as its own bound.
    lp_failure: Optional[LPError] = None
    lp_bound: Optional[float] = None
    try:
        lp_bound = lp_lower_bound(graph)
    except LPInfeasibleError:
        raise
    except LPError as exc:
        lp_failure = exc

    opt: Optional[int] = None
    incumbent: Optional[int] = None
    method = "lp"
    status = "lp_bound_only"

    if oracle in ("auto", "exact") and n <= exact_node_limit:
        try:
            opt = len(
                exact_mds(
                    graph,
                    node_limit=exact_node_limit,
                    search_budget=None if oracle == "exact" else search_budget,
                )
            )
            method, status = "exact", "optimal"
        except SearchBudgetExceededError:
            pass  # drop to the ILP rung
    elif oracle == "exact":
        raise ReproError(
            f"oracle='exact' limited to {exact_node_limit} nodes, got {n}; "
            "use oracle='auto' (ILP rung) or raise exact_node_limit"
        )

    if opt is None and oracle in ("auto", "ilp"):
        ilp = solve_mds_ilp(graph, time_limit_s=time_limit_s)
        if ilp.proven:
            opt = ilp.optimum
            method, status = "ilp", "optimal"
        else:
            incumbent = ilp.optimum
            method, status = "ilp", "time_limit"

    if lp_bound is None:
        if opt is not None:
            lp_bound = float(opt)  # OPT lower-bounds itself
        else:
            raise lp_failure  # type: ignore[misc] - set iff lp_bound is None

    return Certificate(
        size=size,
        opt=opt,
        lp_bound=float(lp_bound),
        ratio_vs_opt=_ratio(size, float(opt)) if opt is not None else None,
        ratio_vs_lp=_ratio(size, lp_bound),
        method=method,
        status=status,
        solve_wall_s=perf_counter() - start,
        incumbent=incumbent,
    )
