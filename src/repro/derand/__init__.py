"""Derandomization of the abstract rounding process.

The method of conditional expectations fixes every participating variable's
coin so that the objective estimate

``U(theta) = sum_u w(u) E[X_u | theta] + sum_v jw(v) phi_v(theta)``

never increases, where ``phi_v`` upper-bounds ``Pr(E_v | theta)`` (the
probability constraint ``v`` is violated after phase one).  Three estimator
modes are provided (see DESIGN.md Section 3, item 4):

* ``exact-product`` — the exact conditional probability, available whenever
  any single coin success covers the constraint on its own (always true for
  one-shot rounding, where phase-one values are 0/1);
* ``chernoff`` — the moment-generating-function bound the paper's own
  Lemma 3.7 analysis uses, valid for any scheme and efficiently updatable;
* ``exact-enum`` — brute-force enumeration, a test oracle for tiny cases.

Two scheduling front-ends mirror the paper's two derandomization routes:
:mod:`repro.derand.coloring_based` (Lemma 3.10 with Lemmas 3.13/3.14) and
:mod:`repro.derand.decomposition_based` (Lemma 3.4 with Lemmas 3.8/3.9).
"""

from repro.derand.estimators import ConstraintEstimator, EstimatorConfig
from repro.derand.conditional import (
    ConditionalExpectationEngine,
    DerandResult,
)
from repro.derand.coloring_based import (
    derandomized_rounding_with_coloring,
    factor_two_via_coloring,
    one_shot_via_coloring,
)
from repro.derand.decomposition_based import (
    derandomized_rounding_with_decomposition,
    factor_two_via_decomposition,
    one_shot_via_decomposition,
)
from repro.derand.seed_level import SeedLevelDerandomizer, SeedLevelResult

__all__ = [
    "ConstraintEstimator",
    "EstimatorConfig",
    "ConditionalExpectationEngine",
    "DerandResult",
    "derandomized_rounding_with_coloring",
    "one_shot_via_coloring",
    "factor_two_via_coloring",
    "derandomized_rounding_with_decomposition",
    "one_shot_via_decomposition",
    "factor_two_via_decomposition",
    "SeedLevelDerandomizer",
    "SeedLevelResult",
]
