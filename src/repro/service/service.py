"""The in-process simulation service: admission windows over the runner.

:class:`SimulationService` turns the run-to-completion experiment stack
into an always-on facade: callers (*tenants*) submit grid cells at any
time from any thread, a dispatcher thread groups concurrently-pending
cells into **batch windows**, and each window executes as one coalesced
dispatch through the existing runner — compatible cells across tenants
stack into a single ragged :class:`~repro.congest.engine.batched.
StackedPlane`, and every record streams back to its requester the moment
its instance's termination mask flips.  The JSON-lines server
(:mod:`repro.service.server`) is a thin shell over this class; tests and
library callers drive it directly.

Why coalescing is legal
-----------------------
Runs are deterministic: a cell's record depends only on the cell.  The
ragged stacked plane (PR 5) is bit-for-bit equal to per-cell execution,
so stacking *different tenants'* cells into one plane changes wall-clock
attribution and nothing else.  The service leans on both facts twice
over — once to coalesce, once to cache (:mod:`repro.service.cache`).

Window policy
-------------
A window opens when the first cell becomes pending and closes on the
first of: **deadline** (``window_s`` after opening), accumulated
**cost** (sum of :func:`repro.experiments.scheduler.estimate_cell_cost`
over admitted cells reaching ``max_window_cost``), **width**
(``max_window_width`` admitted cells), an explicit :meth:`~
SimulationService.flush`, or service **drain** at :meth:`~
SimulationService.stop`.  While open, newly-arriving cells are admitted
round-robin across tenants, at most ``max_inflight_per_client`` per
tenant per window — a heavy sweep fills *its* share of the window and
queues the rest, it cannot starve other tenants.  Each tenant's pending
queue is bounded (``max_pending_per_client``); an overflowing submission
is rejected whole with :class:`~repro.errors.ClientQueueFullError`.

Execution of a window: entries are deduped by cell identity (two tenants
asking for the same cell simulate it once), the result cache serves what
it can (per-ticket opt-out respected), and the residue runs through the
runner's own batch planner — stackable cells as ragged planes with
topologies attached from the shared-memory topology cache, the rest per
cell.  Records are delivered per ticket as they stream; success records
enter the result cache normalized to the solo shape.

Certification (``certify=`` on :meth:`~SimulationService.submit`) runs
per delivery on the requester's own copy, against the process-wide
oracle cache — the service's "quality twin": ``ServiceConfig.
oracle_cache_path`` loads persisted certificates at :meth:`~
SimulationService.start` and dumps them at :meth:`~SimulationService.
stop`, so certificates survive across service lifetimes exactly like
results survive across tenants.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty, Queue
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.api.records import RunRecord
from repro.api.registry import program_spec
from repro.congest.engine import available_engines
from repro.errors import (
    ClientQueueFullError,
    ServiceClosedError,
    UnknownEngineError,
)
from repro.experiments.runner import (
    GridCell,
    _batch_plan,
    _certify_record,
    _iter_batched_group_records,
    _run_cell_record,
)
from repro.experiments.scheduler import estimate_cell_cost
from repro.service.cache import ResultCache, TopologyCache, normalized_record

__all__ = ["ServedRecord", "ServiceConfig", "SimulationService", "Ticket"]

#: What :meth:`SimulationService.submit` accepts as one cell.
CellLike = Union[GridCell, Mapping[str, object]]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`SimulationService` (all deterministic).

    ``window_s`` is the admission deadline — the latency a lone request
    pays to give concurrent tenants a chance to coalesce.  ``0`` for the
    cost/width caps means unbounded (deadline/flush close the window).
    ``batch_size`` passes through to the runner's planner as the stack
    width cap inside one dispatch.  ``oracle_cache_path`` persists the
    certification memo across service lifetimes (loaded on start, dumped
    on stop).
    """

    window_s: float = 0.05
    max_window_cost: int = 0
    max_window_width: int = 64
    batch_size: int = 0
    max_pending_per_client: int = 256
    max_inflight_per_client: int = 32
    result_cache_entries: int = 1024
    topology_cache_entries: int = 64
    oracle_cache_path: Optional[str] = None


@dataclass
class ServedRecord:
    """One delivered record plus the service's per-delivery meta.

    ``record`` is solo-parity (normalized: no ``batch``/``plan`` blocks —
    identical fields to a ``strategy="cell"`` :meth:`Experiment.run`
    record up to wall-clock, plus ``quality`` when the ticket asked to
    certify).  ``meta`` is where the service's own telemetry lives:
    ``window`` (the 1-based window ordinal that served it), ``cache_hit``
    (served from the result cache), ``stack_width`` (instances in the
    plane that computed it; 1 for per-cell and cached records) and
    ``latency_s`` (submit-to-delivery, the figure the service benchmark
    reports).  Keeping telemetry out of the record is what makes the
    parity guarantee checkable field for field.
    """

    index: int
    record: RunRecord
    meta: Dict[str, object] = field(default_factory=dict)


class Ticket:
    """One submission's handle: a thread-safe stream of served records.

    Iterate to receive :class:`ServedRecord` objects in completion order;
    the iterator ends when every cell of the submission was delivered (or
    accounted as cancelled).  :meth:`collect` gathers records back into
    submission order.  :meth:`cancel` is the client-disconnect path: the
    service skips delivery for cancelled tickets (their cells may still
    execute inside an already-coalesced window — determinism makes that
    harmless, and siblings in the window still get their records).
    """

    def __init__(
        self,
        client: str,
        cells: Sequence[GridCell],
        use_cache: bool = True,
        certify: Optional[str] = None,
    ):
        self.client = client
        self.cells = list(cells)
        self.use_cache = bool(use_cache)
        self.certify = certify
        self.submitted_at = time.monotonic()
        self._events: "Queue[Optional[ServedRecord]]" = Queue()
        self._accounted = 0
        self._state_lock = threading.Lock()
        self._cancelled = threading.Event()
        if not self.cells:
            self._events.put(None)

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def cancel(self) -> None:
        """Stop deliveries to this ticket and end its event stream."""
        self._cancelled.set()
        self._events.put(None)

    def _account(self) -> bool:
        with self._state_lock:
            self._accounted += 1
            return self._accounted >= len(self.cells)

    def _push(self, served: ServedRecord) -> None:
        done = self._account()
        if not self.cancelled:
            self._events.put(served)
        if done:
            self._events.put(None)

    def _skip(self) -> None:
        """Account one cancelled-entry delivery without an event."""
        if self._account():
            self._events.put(None)

    def next_event(self, timeout: Optional[float] = None) -> Optional[ServedRecord]:
        """Block for the next served record; ``None`` means the stream ended.

        With a ``timeout``, a stalled service surfaces as
        :class:`~repro.errors.ServiceClosedError` instead of a hang.
        """
        try:
            return self._events.get(timeout=timeout)
        except Empty:
            raise ServiceClosedError(
                f"no record within {timeout}s (service stalled or stopped)"
            ) from None

    def __iter__(self) -> Iterator[ServedRecord]:
        while True:
            served = self.next_event()
            if served is None:
                return
            yield served

    def collect(self, timeout: Optional[float] = 120.0) -> List[RunRecord]:
        """Every record of the submission, restored to submission order."""
        records: List[Optional[RunRecord]] = [None] * len(self.cells)
        remaining = len(self.cells)
        while remaining:
            served = self.next_event(timeout=timeout)
            if served is None:
                raise ServiceClosedError(
                    f"submission ended after {len(self.cells) - remaining} of "
                    f"{len(self.cells)} records (cancelled or service stopped)"
                )
            records[served.index] = served.record
            remaining -= 1
        return records  # type: ignore[return-value]


class _Entry:
    """One pending cell: its ticket, submission index, and priced cost."""

    __slots__ = ("ticket", "index", "cell", "cost")

    def __init__(self, ticket: Ticket, index: int, cell: GridCell, cost: int):
        self.ticket = ticket
        self.index = index
        self.cell = cell
        self.cost = cost


class SimulationService:
    """The always-on multi-tenant facade over the experiment runner."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.results = ResultCache(self.config.result_cache_entries)
        self.topologies = TopologyCache(self.config.topology_cache_entries)
        self._cond = threading.Condition()
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._pending = 0
        self._flush_requested = False
        self._stopping = False
        self._running = False
        self._thread: Optional[threading.Thread] = None
        # Stats (guarded by self._cond):
        self._windows = 0
        self._coalesced_windows = 0
        self._records_served = 0
        self._cache_served = 0
        self._close_reasons: Dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SimulationService":
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._stopping = False
        path = self.config.oracle_cache_path
        if path and Path(path).exists():
            from repro.oracle import oracle_cache

            oracle_cache().load(path)
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down: by default finish every pending cell first.

        ``drain=False`` cancels all pending work instead — affected
        tickets' streams end early (their :meth:`Ticket.collect` raises
        :class:`~repro.errors.ServiceClosedError`).
        """
        with self._cond:
            if not self._running:
                return
            self._stopping = True
            if not drain:
                for queue in self._queues.values():
                    for entry in queue:
                        entry.ticket.cancel()
                        entry.ticket._skip()
                        self._pending -= 1
                    queue.clear()
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._cond:
            self._running = False
        path = self.config.oracle_cache_path
        if path:
            from repro.oracle import oracle_cache

            oracle_cache().dump(path)
        self.topologies.clear()

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client surface --------------------------------------------------------

    @staticmethod
    def _as_cell(cell: CellLike) -> GridCell:
        if isinstance(cell, GridCell):
            return cell
        return GridCell(
            family=str(cell["family"]),
            n=int(cell["n"]),  # type: ignore[arg-type]
            program=str(cell["program"]),
            engine=str(cell["engine"]),
            seed=int(cell.get("seed", 7)),  # type: ignore[arg-type, union-attr]
        )

    def submit(
        self,
        client: str,
        cells: Sequence[CellLike],
        use_cache: bool = True,
        certify: Optional[str] = None,
    ) -> Ticket:
        """Enqueue a tenant's cells; returns the delivery :class:`Ticket`.

        Grid axes are validated eagerly — an unknown program/engine (or
        oracle mode) raises the same structured error the builder raises,
        before anything enqueues — mirroring the grid-expansion contract
        that one bad axis value must not poison a queue.  ``use_cache=
        False`` opts this submission out of result-cache *reads* (fresh
        execution guaranteed; the fresh results still refresh the cache).
        """
        resolved = [self._as_cell(cell) for cell in cells]
        registered = set(available_engines())
        for cell in resolved:
            program_spec(cell.program)  # raises UnknownProgramError
            if cell.engine not in registered:
                raise UnknownEngineError(cell.engine, available_engines())
        if certify is not None:
            from repro.oracle import ORACLE_MODES

            if certify not in ORACLE_MODES:
                raise ValueError(
                    f"unknown certify mode {certify!r}; choose from "
                    f"{', '.join(ORACLE_MODES)}"
                )
        ticket = Ticket(client, resolved, use_cache=use_cache, certify=certify)
        entries = [
            _Entry(ticket, i, cell, self._safe_cost(cell))
            for i, cell in enumerate(resolved)
        ]
        with self._cond:
            if not self._running or self._stopping:
                raise ServiceClosedError()
            queue = self._queues.setdefault(client, deque())
            limit = self.config.max_pending_per_client
            if len(queue) + len(entries) > limit:
                raise ClientQueueFullError(client, len(queue), limit)
            queue.extend(entries)
            self._pending += len(entries)
            self._cond.notify_all()
        return ticket

    def flush(self) -> None:
        """Close the current (or next) batch window immediately.

        Primarily a determinism aid for tests and drains: everything
        pending at flush time is admitted (fairness caps permitting) and
        executed without waiting out the window deadline.
        """
        with self._cond:
            self._flush_requested = True
            self._cond.notify_all()

    def stats(self) -> Dict[str, object]:
        with self._cond:
            return {
                "running": self._running,
                "pending": self._pending,
                "clients": len(self._queues),
                "windows": self._windows,
                "coalesced_windows": self._coalesced_windows,
                "records_served": self._records_served,
                "cache_served": self._cache_served,
                "window_close_reasons": dict(self._close_reasons),
                "result_cache": self.results.stats(),
                "topology_cache": self.topologies.stats(),
            }

    # -- dispatcher ------------------------------------------------------------

    @staticmethod
    def _safe_cost(cell: GridCell) -> int:
        try:
            return estimate_cell_cost(cell)
        except Exception:  # noqa: BLE001 - pricing must never block admission
            return 1

    def _admit(self, window: List[_Entry], taken: Dict[str, int], cost: int) -> int:
        """Move pending entries into the window, round-robin across tenants.

        Caller holds ``self._cond``.  Respects the per-tenant in-flight
        cap and the window width/cost caps; cancelled entries are
        accounted and dropped here (the disconnect path for cells whose
        window had not opened yet).
        """
        cfg = self.config
        progress = True
        while progress:
            progress = False
            for client, queue in list(self._queues.items()):
                if not queue:
                    continue
                if taken.get(client, 0) >= cfg.max_inflight_per_client:
                    continue
                if cfg.max_window_width and len(window) >= cfg.max_window_width:
                    return cost
                if cfg.max_window_cost and window and cost >= cfg.max_window_cost:
                    return cost
                entry = queue.popleft()
                self._pending -= 1
                progress = True
                if entry.ticket.cancelled:
                    entry.ticket._skip()
                    continue
                window.append(entry)
                taken[client] = taken.get(client, 0) + 1
                cost += entry.cost
        return cost

    def _dispatch_loop(self) -> None:
        cfg = self.config
        while True:
            with self._cond:
                while self._pending == 0 and not self._stopping:
                    self._flush_requested = False  # nothing to flush
                    self._cond.wait()
                if self._pending == 0 and self._stopping:
                    return
                deadline = time.monotonic() + cfg.window_s
                window: List[_Entry] = []
                taken: Dict[str, int] = {}
                cost = 0
                while True:
                    cost = self._admit(window, taken, cost)
                    if self._stopping:
                        reason = "drain"
                        break
                    if self._flush_requested:
                        reason = "flush"
                        break
                    if cfg.max_window_width and len(window) >= cfg.max_window_width:
                        reason = "width"
                        break
                    if cfg.max_window_cost and cost >= cfg.max_window_cost:
                        reason = "cost"
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        reason = "deadline"
                        break
                    self._cond.wait(timeout=remaining)
                self._flush_requested = False
            if window:
                self._execute_window(window, reason)

    # -- window execution ------------------------------------------------------

    def _execute_window(self, window: List[_Entry], reason: str) -> None:
        cfg = self.config
        with self._cond:
            self._windows += 1
            window_id = self._windows
            self._close_reasons[reason] = self._close_reasons.get(reason, 0) + 1

        # Dedupe: all entries wanting one cell identity share one execution.
        wanted: "OrderedDict[GridCell, List[_Entry]]" = OrderedDict()
        for entry in window:
            wanted.setdefault(entry.cell, []).append(entry)

        # Result-cache pass.  A cached cell is delivered immediately to its
        # cache-willing requesters; it re-runs only if an opt-out requester
        # remains (whose fresh — identical — record then refreshes the
        # cache and also serves any cache-willing co-requesters).
        to_run: List[GridCell] = []
        for cell, entries in list(wanted.items()):
            if any(entry.ticket.use_cache for entry in entries):
                cached = self.results.get(cell)
            else:
                cached = None
            if cached is None:
                to_run.append(cell)
                continue
            opted_out = [e for e in entries if not e.ticket.use_cache]
            for entry in entries:
                if entry.ticket.use_cache:
                    self._deliver(entry, cached, window_id, cache_hit=True, width=1)
            if opted_out:
                wanted[cell] = opted_out
                to_run.append(cell)
            else:
                del wanted[cell]

        # Coalesced execution of the residue through the runner's planner:
        # stackable cells as ragged planes, the rest per cell — identical
        # machinery, records stream out at instance termination.
        coalesced = False
        for kind, indices, _meta in _batch_plan(to_run, cfg.batch_size):
            if kind == "cell":
                cell = to_run[indices[0]]
                record = _run_cell_record(
                    cell, network=self.topologies.network_for(cell)
                )
                self._finish(cell, record, wanted, window_id, width=1)
            else:
                group = [to_run[i] for i in indices]
                tenants = {e.ticket.client for c in group for e in wanted[c]}
                if len(tenants) >= 2:
                    coalesced = True
                networks = [self.topologies.network_for(c) for c in group]
                for local, record in _iter_batched_group_records(
                    group, networks=networks
                ):
                    self._finish(
                        group[local], record, wanted, window_id, width=len(group)
                    )
        if coalesced:
            with self._cond:
                self._coalesced_windows += 1

    def _finish(
        self,
        cell: GridCell,
        record: RunRecord,
        wanted: Mapping[GridCell, List[_Entry]],
        window_id: int,
        width: int,
    ) -> None:
        """Normalize, cache, and fan one fresh record out to its requesters."""
        normalized = normalized_record(record)
        self.results.store(normalized)
        for entry in wanted.get(cell, ()):
            self._deliver(entry, normalized, window_id, cache_hit=False, width=width)

    def _deliver(
        self,
        entry: _Entry,
        record: RunRecord,
        window_id: int,
        cache_hit: bool,
        width: int,
    ) -> None:
        if entry.ticket.cancelled:
            entry.ticket._skip()
            return
        # Every requester owns an independent copy: certification mutates
        # it, and two tenants served by one execution must not share state.
        copy = RunRecord.from_dict(record.to_dict())
        if entry.ticket.certify is not None:
            copy = _certify_record(copy, entry.ticket.certify)
        meta: Dict[str, object] = {
            "window": window_id,
            "cache_hit": cache_hit,
            "stack_width": width,
            "latency_s": round(time.monotonic() - entry.ticket.submitted_at, 6),
        }
        with self._cond:
            self._records_served += 1
            if cache_hit:
                self._cache_served += 1
        entry.ticket._push(ServedRecord(index=entry.index, record=copy, meta=meta))
