"""A small synchronous client for the JSON-lines service protocol.

Used by the test suite, ``python -m repro submit``, the CI smoke script
and the ``--service`` benchmark — anything that wants to be a tenant
without pulling in asyncio.  One :class:`ServiceClient` is one
connection, hence one tenant; run several instances (threads or
processes) to exercise multi-tenant coalescing.

The client is deliberately single-flight: :meth:`ServiceClient.stream`
submits one request and consumes frames until its ``done`` — the usage
every current consumer needs — while :meth:`submit` + :meth:`events`
expose the raw frame stream for callers that want to interleave requests
themselves (frames carry the request ``id`` for correlation).
"""

from __future__ import annotations

import itertools
import socket
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ServiceClosedError, ServiceError
from repro.experiments.runner import GridCell
from repro.service.protocol import cell_to_wire, decode_frame, encode_frame

__all__ = ["ServiceClient", "RemoteServiceError"]


class RemoteServiceError(ServiceError):
    """The server answered with an ``error`` frame.

    ``code`` is the server-side exception's class name (a
    :mod:`repro.errors` code, e.g. ``ClientQueueFullError``), so remote
    callers can pattern-match the same family a library caller catches.
    """

    def __init__(self, payload: Dict[str, str]):
        self.code = str(payload.get("type", "ServiceError"))
        super().__init__(f"{self.code}: {payload.get('message', '')}")


class ServiceClient:
    """One tenant connection speaking the JSON-lines protocol."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        client: Optional[str] = None,
        timeout: float = 120.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self.client = client
        if client is not None:
            self._send({"type": "hello", "client": client})
            frame = self._recv()
            if frame.get("type") == "hello":
                self.client = str(frame.get("client"))

    # -- plumbing --------------------------------------------------------------

    def _send(self, frame: Dict[str, object]) -> None:
        self._file.write(encode_frame(frame))
        self._file.flush()

    def _recv(self) -> Dict[str, object]:
        line = self._file.readline()
        if not line:
            raise ServiceClosedError("server closed the connection")
        return decode_frame(line)

    def close(self) -> None:
        try:
            self._send({"type": "bye"})
        except (OSError, ValueError):  # pragma: no cover - already torn down
            pass
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests --------------------------------------------------------------

    def submit(
        self,
        cells: Sequence[GridCell],
        use_cache: bool = True,
        certify: Optional[str] = None,
    ) -> str:
        """Send one submission; returns its request id (``accepted`` frame
        or structured rejection consumed here)."""
        request_id = f"req-{next(self._ids)}"
        self._send(
            {
                "type": "submit",
                "id": request_id,
                "cells": [cell_to_wire(c) for c in cells],
                "use_cache": bool(use_cache),
                "certify": certify,
            }
        )
        frame = self._recv()
        if frame.get("type") == "error":
            raise RemoteServiceError(dict(frame.get("error") or {}))  # type: ignore[arg-type]
        if frame.get("type") != "accepted":
            raise ServiceError(f"expected 'accepted', got {frame.get('type')!r}")
        return request_id

    def events(self) -> Iterator[Dict[str, object]]:
        """Raw server frames, as they arrive (caller correlates by id)."""
        while True:
            yield self._recv()

    def stream(
        self,
        cells: Sequence[GridCell],
        use_cache: bool = True,
        certify: Optional[str] = None,
    ) -> Iterator[Tuple[int, Dict[str, object], Dict[str, object]]]:
        """Submit and yield ``(index, record_dict, meta)`` until ``done``.

        Records arrive in completion order — the service streams each one
        at its instance's termination; ``index`` restores submission
        order.  An ``error`` frame for this request raises
        :class:`RemoteServiceError`.
        """
        request_id = self.submit(cells, use_cache=use_cache, certify=certify)
        for frame in self.events():
            if frame.get("id") != request_id:
                continue  # another in-flight request on this connection
            ftype = frame.get("type")
            if ftype == "record":
                yield (
                    int(frame["index"]),  # type: ignore[arg-type]
                    dict(frame["record"]),  # type: ignore[arg-type]
                    dict(frame.get("meta") or {}),  # type: ignore[arg-type]
                )
            elif ftype == "done":
                return
            elif ftype == "error":
                raise RemoteServiceError(dict(frame.get("error") or {}))  # type: ignore[arg-type]

    def run(
        self,
        cells: Sequence[GridCell],
        use_cache: bool = True,
        certify: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Submit and collect every record, restored to submission order."""
        records: List[Optional[Dict[str, object]]] = [None] * len(cells)
        for index, record, _meta in self.stream(
            cells, use_cache=use_cache, certify=certify
        ):
            records[index] = record
        missing = [i for i, rec in enumerate(records) if rec is None]
        if missing:
            raise ServiceClosedError(
                f"request finished without records for indices {missing}"
            )
        return records  # type: ignore[return-value]

    def flush(self) -> None:
        """Ask the service to close the current batch window immediately."""
        self._send({"type": "flush"})

    def stats(self) -> Dict[str, object]:
        """The service's live counters (windows, caches, backpressure)."""
        request_id = f"stats-{next(self._ids)}"
        self._send({"type": "stats", "id": request_id})
        for frame in self.events():
            if frame.get("type") == "stats" and frame.get("id") == request_id:
                return dict(frame.get("stats") or {})  # type: ignore[arg-type]
            if frame.get("type") == "error":
                raise RemoteServiceError(dict(frame.get("error") or {}))  # type: ignore[arg-type]
