"""Cluster graphs and network decompositions (Definitions 3.1 / 3.2).

A :class:`Cluster` is a connected node set with a leader and a rooted
spanning tree of bounded depth; a :class:`NetworkDecomposition` partitions
the graph into clusters colored so that same-color clusters are
``k``-separated (every inter-cluster node pair is at distance > k).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

import networkx as nx

from repro.errors import DecompositionError
from repro.graphs.powers import nodes_within


@dataclass(frozen=True)
class Cluster:
    """One cluster of a decomposition (Definition 3.1).

    ``parent`` maps every member to its tree parent (leader maps to ``-1``);
    ``depth`` is the tree's maximum root distance.
    """

    id: int
    members: FrozenSet[int]
    leader: int
    parent: Dict[int, int]
    depth: int
    color: int = -1

    def __post_init__(self) -> None:
        if self.leader not in self.members:
            raise DecompositionError(
                f"cluster {self.id}: leader {self.leader} not a member"
            )

    @property
    def size(self) -> int:
        return len(self.members)

    def sorted_members(self) -> List[int]:
        return sorted(self.members)


@dataclass
class NetworkDecomposition:
    """A strong-diameter ``k``-hop ``(d, c)``-decomposition (Definition 3.2)."""

    graph: nx.Graph
    clusters: List[Cluster]
    separation_k: int
    cluster_of: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.cluster_of:
            for cluster in self.clusters:
                for v in cluster.members:
                    self.cluster_of[v] = cluster.id

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_colors(self) -> int:
        return len({c.color for c in self.clusters}) if self.clusters else 0

    @property
    def max_depth(self) -> int:
        """The decomposition's ``d`` parameter (max cluster tree depth)."""
        return max((c.depth for c in self.clusters), default=0)

    def color_classes(self) -> List[List[Cluster]]:
        """Clusters grouped by color, ordered by color then cluster id."""
        buckets: Dict[int, List[Cluster]] = {}
        for cluster in self.clusters:
            buckets.setdefault(cluster.color, []).append(cluster)
        return [
            sorted(buckets[color], key=lambda c: c.id) for color in sorted(buckets)
        ]


def _validate_tree(graph: nx.Graph, cluster: Cluster) -> None:
    members = cluster.members
    if set(cluster.parent) != set(members):
        raise DecompositionError(
            f"cluster {cluster.id}: tree does not span exactly the members"
        )
    depth_seen = 0
    for v in members:
        hops = 0
        u = v
        while u != cluster.leader:
            p = cluster.parent[u]
            if p == -1 or p not in members:
                raise DecompositionError(
                    f"cluster {cluster.id}: node {u} has parent {p} outside"
                )
            if not graph.has_edge(u, p):
                raise DecompositionError(
                    f"cluster {cluster.id}: tree edge ({u}, {p}) not in graph"
                )
            u = p
            hops += 1
            if hops > len(members):
                raise DecompositionError(
                    f"cluster {cluster.id}: parent pointers cycle at {v}"
                )
        depth_seen = max(depth_seen, hops)
    if cluster.parent[cluster.leader] != -1:
        raise DecompositionError(
            f"cluster {cluster.id}: leader must have parent -1"
        )
    if depth_seen > cluster.depth:
        raise DecompositionError(
            f"cluster {cluster.id}: actual depth {depth_seen} exceeds "
            f"declared {cluster.depth}"
        )


def validate_decomposition(dec: NetworkDecomposition) -> None:
    """Check all Definition 3.1 / 3.2 invariants; raise on violation."""
    graph = dec.graph
    seen: Dict[int, int] = {}
    for cluster in dec.clusters:
        for v in cluster.members:
            if v in seen:
                raise DecompositionError(
                    f"node {v} in clusters {seen[v]} and {cluster.id}"
                )
            seen[v] = cluster.id
    if set(seen) != set(graph.nodes()):
        missing = set(graph.nodes()) - set(seen)
        raise DecompositionError(
            f"decomposition misses {len(missing)} nodes (e.g. {sorted(missing)[:5]})"
        )
    for cluster in dec.clusters:
        sub = graph.subgraph(cluster.members)
        if cluster.size > 1 and not nx.is_connected(sub):
            raise DecompositionError(f"cluster {cluster.id} is not connected")
        _validate_tree(graph, cluster)
        if cluster.color < 0:
            raise DecompositionError(f"cluster {cluster.id} is uncolored")

    # k-separation of same-color clusters.
    k = dec.separation_k
    by_color: Dict[int, List[Cluster]] = {}
    for cluster in dec.clusters:
        by_color.setdefault(cluster.color, []).append(cluster)
    for color, clusters in by_color.items():
        for cluster in clusters:
            reach = nodes_within(graph, cluster.members, k)
            for other in clusters:
                if other.id == cluster.id:
                    continue
                overlap = reach & other.members
                if overlap:
                    raise DecompositionError(
                        f"color {color}: clusters {cluster.id} and {other.id} "
                        f"are within distance {k} (witness {sorted(overlap)[:3]})"
                    )
