"""Benchmark E6: Theorem 1.4 CDS quality table.

Regenerates the Theorem 1.4 CDS quality (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e06_cds


def bench_e06_cds(benchmark):
    run_experiment(benchmark, e06_cds.run)
