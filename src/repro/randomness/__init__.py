"""k-wise independent randomness (paper Lemma 3.3).

A random seed of ``K = k * m`` fair bits is interpreted as the ``k``
coefficients of a degree-``(k-1)`` polynomial over ``GF(2^m)``.  Evaluating
the polynomial at distinct field points yields ``2^m``-valued outputs that
are exactly ``k``-wise independent; comparing an output against a
transmittable probability produces the biased coins the rounding processes
need.
"""

from repro.randomness.gf2 import GF2m, find_irreducible
from repro.randomness.kwise import KWiseCoins, seed_bits_required

__all__ = ["GF2m", "find_irreducible", "KWiseCoins", "seed_bits_required"]
