"""The paper's analytic bounds, as named formulas for experiment tables.

All bounds are stated against the LP optimum (a lower bound on OPT), so a
measured ratio below the bound certifies the theorem's guarantee on that
instance.
"""

from __future__ import annotations

import math

from repro.util.mathx import H_harmonic


def theorem11_approximation_bound(eps: float, max_degree: int) -> float:
    """Theorem 1.1 / 1.2 guarantee: ``(1 + eps)(1 + ln(Delta + 1))``."""
    return (1.0 + eps) * (1.0 + math.log(max_degree + 1))


#: Theorems 1.1 and 1.2 promise the same approximation factor; they differ
#: in round complexity only.
theorem12_approximation_bound = theorem11_approximation_bound


def corollary13_approximation_bound(eps: float, max_degree: int) -> float:
    """Corollary 1.3 (LOCAL model): ``(1 + eps) ln(Delta + 1)``."""
    return (1.0 + eps) * math.log(max_degree + 1)


def theorem14_cds_bound(max_degree: int, constant: float = 6.0) -> float:
    """Theorem 1.4: ``O(ln Delta)``-approximation for connected dominating
    set.  The hidden constant combines the MDS factor, the |CDS| < 3|S|
    blow-up and the spanner overhead; ``constant`` makes it explicit for
    tables (measured ratios are typically far below it)."""
    return constant * max(1.0, math.log(max_degree + 1))


def greedy_bound(max_degree: int) -> float:
    """Sequential greedy guarantee ``H(Delta + 1) <= 1 + ln(Delta + 1)``."""
    return H_harmonic(max_degree + 1)


def one_shot_uncovered_bound(max_degree: int) -> float:
    """Lemma 3.6: ``Pr(E_v) <= 1 / Delta~``."""
    return 1.0 / (max_degree + 1)


def factor_two_uncovered_bound(max_degree: int) -> float:
    """Lemma 3.7: ``Pr(E_v) <= 1 / Delta~^4`` (for admissible eps, r)."""
    return 1.0 / float(max_degree + 1) ** 4


def lemma37_required_r(eps: float, max_degree: int, scale: float = 1.0) -> float:
    """Lemma 3.7's fractionality requirement ``r >= 256 eps^-3 ln Delta~``."""
    return 256.0 * scale * math.log(max_degree + 1) / eps ** 3
