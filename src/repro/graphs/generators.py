"""Deterministic (seeded) graph generators for workloads.

The paper motivates MDS with clustering in wireless ad-hoc / sensor networks,
so the suite leans on random geometric (unit-disk) graphs; classic families
(G(n,p), preferential attachment, grids, trees, caterpillars, regular graphs)
round out the sweep so degree distributions from near-regular to heavy-tailed
are covered.  All generators return normalized graphs (labels ``0..n-1``)
and take an explicit ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.errors import GraphError
from repro.graphs.normalize import normalize_graph


def _ensure_connected(graph: nx.Graph, rng: random.Random) -> nx.Graph:
    """Connect components by linking a random node of each component to the
    largest component (adds the minimum number of edges)."""
    if graph.number_of_nodes() == 0:
        return graph
    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    anchor_pool = sorted(components[0])
    for comp in components[1:]:
        u = rng.choice(sorted(comp))
        v = rng.choice(anchor_pool)
        graph.add_edge(u, v)
    return graph


def gnp_graph(n: int, p: float, seed: int = 0, connected: bool = True) -> nx.Graph:
    """Erdos-Renyi ``G(n, p)``; optionally patched to be connected."""
    if n <= 0:
        raise GraphError("n must be positive")
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(n, p, seed=seed)
    if connected:
        _ensure_connected(graph, rng)
    return normalize_graph(graph)


def geometric_graph(
    n: int, radius: float | None = None, seed: int = 0, connected: bool = True
) -> nx.Graph:
    """Random geometric (unit-disk) graph: the sensor-network workload.

    ``radius`` defaults to the connectivity threshold
    ``sqrt(2 * ln(n) / (pi * n))`` so average degree stays ~logarithmic.
    """
    if n <= 0:
        raise GraphError("n must be positive")
    if radius is None:
        radius = math.sqrt(2.0 * math.log(max(2, n)) / (math.pi * n))
    rng = random.Random(seed)
    graph = nx.random_geometric_graph(n, radius, seed=seed)
    if connected:
        _ensure_connected(graph, rng)
    return normalize_graph(graph)


def preferential_attachment_graph(n: int, m: int = 2, seed: int = 0) -> nx.Graph:
    """Barabasi-Albert preferential attachment: heavy-tailed degrees."""
    if n <= m:
        raise GraphError("n must exceed m")
    return normalize_graph(nx.barabasi_albert_graph(n, m, seed=seed))


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2D grid: the bounded-degree, large-diameter extreme."""
    return normalize_graph(nx.grid_2d_graph(rows, cols))


def ring_graph(n: int) -> nx.Graph:
    """Cycle on ``n`` nodes."""
    return normalize_graph(nx.cycle_graph(n))


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """Uniform random labelled tree (Pruefer sequence)."""
    if n <= 0:
        raise GraphError("n must be positive")
    if n <= 2:
        return normalize_graph(nx.path_graph(n))
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return normalize_graph(nx.from_prufer_sequence(prufer))


def caterpillar_graph(spine: int, legs_per_node: int = 2) -> nx.Graph:
    """Caterpillar: a path spine with pendant legs.

    Its MDS is essentially the spine, a classic adversarial shape for greedy.
    """
    graph = nx.path_graph(spine)
    next_id = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(v, next_id)
            next_id += 1
    return normalize_graph(graph)


def regular_graph(n: int, d: int, seed: int = 0) -> nx.Graph:
    """Random ``d``-regular graph."""
    if (n * d) % 2 != 0:
        raise GraphError("n*d must be even for a d-regular graph")
    return normalize_graph(nx.random_regular_graph(d, n, seed=seed))


def star_graph(n: int) -> nx.Graph:
    """Star with ``n`` leaves: MDS is a single node, Delta = n."""
    return normalize_graph(nx.star_graph(n))


def clique_graph(n: int) -> nx.Graph:
    """Complete graph: MDS is a single node, maximal density."""
    return normalize_graph(nx.complete_graph(n))


def dumbbell_graph(clique_size: int, path_length: int) -> nx.Graph:
    """Two cliques joined by a path: dense ends, sparse middle, a shape where
    the domination need is heterogeneous (good crossover probe)."""
    graph = nx.complete_graph(clique_size)
    offset = clique_size
    other = nx.complete_graph(clique_size)
    graph = nx.disjoint_union(graph, other)
    prev = 0
    next_id = 2 * clique_size
    for _ in range(path_length):
        graph.add_edge(prev, next_id)
        prev = next_id
        next_id += 1
    graph.add_edge(prev, offset)
    return normalize_graph(graph)
