"""Node program API: the code that runs at every node of the network.

A :class:`NodeProgram` is instantiated once per node by the simulator.  The
simulator drives it through :meth:`NodeProgram.setup` (before round 1) and
:meth:`NodeProgram.receive` (once per round, with the messages that arrived).
Programs communicate *only* through :class:`Context` — they never see the
graph, other programs, or any global state.  This keeps simulated algorithms
honest about what a distributed node could actually know.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.congest.message import Message
from repro.errors import CongestError


class Context:
    """Per-node, per-round interface handed to a node program.

    Attributes
    ----------
    node:
        This node's unique identifier (also its ``O(log n)``-bit ID).
    neighbors:
        Sorted tuple of neighbor identifiers (port numbering).
    n:
        Number of nodes in the network (known to all nodes, as in the paper).
    round_number:
        Current round, starting at 1 (0 during :meth:`NodeProgram.setup`).
    """

    __slots__ = (
        "node",
        "neighbors",
        "n",
        "round_number",
        "_neighbor_set",
        "_outbox",
        "_outputs",
        "_halted",
    )

    def __init__(self, node: int, neighbors: Tuple[int, ...], n: int):
        self.node = node
        self.neighbors = neighbors
        self.n = n
        self.round_number = 0
        self._neighbor_set = frozenset(neighbors)
        self._outbox: Dict[int, Message] = {}
        self._outputs: Dict[str, object] = {}
        self._halted = False

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def send(self, to: int, message: Message) -> None:
        """Queue ``message`` for delivery to neighbor ``to`` next round.

        At most one message per neighbor per round (the CONGEST contract);
        sending twice to the same port in one round is a protocol error.
        """
        if to not in self._neighbor_set:
            raise CongestError(f"node {self.node} cannot send to non-neighbor {to}")
        if to in self._outbox:
            raise CongestError(
                f"node {self.node} already sent to {to} this round "
                "(one message per neighbor per round)"
            )
        self._outbox[to] = message

    def broadcast(self, message: Message) -> None:
        """Send the same message to every neighbor."""
        for u in self.neighbors:
            self.send(u, message)

    def output(self, key: str, value: object) -> None:
        """Record part of this node's local output."""
        self._outputs[key] = value

    def halt(self) -> None:
        """Mark this node as locally terminated.

        A halted node still receives messages (its program's ``receive`` is
        no longer called); the simulation stops when all nodes have halted.
        """
        self._halted = True

    # -- simulator-side accessors ------------------------------------------

    def _drain_outbox(self) -> Dict[int, Message]:
        out, self._outbox = self._outbox, {}
        return out


class NodeProgram:
    """Base class for distributed algorithms run on the simulator.

    Subclasses override :meth:`setup` and :meth:`receive`.  The same program
    class is instantiated at every node; per-node *input* is supplied through
    the ``inputs`` mapping passed to the simulator and made available as
    ``self.input`` (an arbitrary object, ``None`` if absent).
    """

    #: Event-driven contract: set to ``True`` iff ``receive`` with an empty
    #: inbox is a guaranteed no-op (no sends, outputs, halts, or state
    #: changes — including defensive round-count cutoffs).  Engines may then
    #: skip idle nodes entirely and only run recipients of actual traffic,
    #: making round cost proportional to messages instead of live nodes.
    event_driven = False

    #: Vectorization contract (per-phase opt-in): the
    #: :class:`~repro.congest.engine.vector.MessageSpec` shapes of every
    #: broadcast phase this program wants executed on the numpy message
    #: plane — a fixed tag plus named small-int fields, sent identically to
    #: all neighbors.  Non-empty only makes the program *eligible*; the
    #: vector engine also needs a registered
    #: :class:`~repro.congest.engine.vector.VectorKernel` for the class,
    #: and any phase whose traffic does not conform (targeted sends, mixed
    #: tags, partial broadcasts) runs under FastEngine semantics instead.
    message_specs: tuple = ()

    def __init__(self, input_value: object = None):
        self.input = input_value

    def setup(self, ctx: Context) -> None:
        """Round-0 hook: initialize state, optionally send first messages."""

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        """Per-round hook: ``inbox`` maps sender id to the received message."""
        raise NotImplementedError


OptionalMessage = Optional[Message]
