"""Top-level MDS algorithms: the Theorem 1.1 / 1.2 pipelines and the
randomized counterpart used for comparison experiments.
"""

from repro.mds.pipeline import MDSResult, PipelineParams, StageTrace
from repro.mds.deterministic import (
    approx_mds_coloring,
    approx_mds_decomposition,
)
from repro.mds.local_model import approx_mds_local
from repro.mds.randomized import approx_mds_randomized

__all__ = [
    "MDSResult",
    "PipelineParams",
    "StageTrace",
    "approx_mds_coloring",
    "approx_mds_decomposition",
    "approx_mds_local",
    "approx_mds_randomized",
]
