"""Backend conformance for the plane's array-namespace seam.

``CsrPlane`` / ``StackedPlane`` capture :func:`plane_namespace` at
construction: under numpy the row reductions keep the exact
``ufunc.reduceat`` fast paths, under any other namespace they run
portable segment kernels built from array-API *standard* operations
only.  Two backends exercise the portable path here:

* a **restricted numpy proxy** (always runs): forwards a fixed allowlist
  of standard-namespace functions to numpy and raises on anything else,
  so a numpy-only idiom creeping into the portable path (``reduceat``,
  ``flatnonzero``, ``bincount``, ...) fails loudly without any optional
  dependency installed;
* **array-api-strict** (skip-if-missing): the reference strict
  implementation of the standard, proving the seam holds against a
  backend whose arrays are *not* numpy arrays at all.

Ground truth is always the numpy plane — per-row python loops double-check
the reductions themselves, so a bug shared by both code paths can't hide.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.congest.engine import (
    CsrPlane,
    StackedPlane,
    plane_namespace,
    set_plane_namespace,
    use_plane_namespace,
)
from repro.congest.engine.vector import PendingBroadcast
from repro.congest.network import Network
from repro.graphs.suite import suite_instance

#: The array-API standard surface the portable plane path may touch.
#: Keeping this an explicit allowlist is the point of the proxy backend:
#: the portable kernels must stay inside it or the tests fail.
_STANDARD_FUNCTIONS = frozenset(
    {
        "arange",
        "asarray",
        "astype",
        "cumulative_sum",
        "full",
        "max",
        "maximum",
        "searchsorted",
        "take",
        "where",
        "zeros",
    }
)


class RestrictedNumpyNamespace:
    """Array-API-shaped namespace backed by numpy, allowlist enforced."""

    int64 = np.int64
    bool = np.bool_

    def __getattr__(self, name):
        if name not in _STANDARD_FUNCTIONS:
            raise AttributeError(
                f"{name!r} is not part of the array-API standard surface "
                "the plane seam is allowed to use"
            )
        return getattr(np, name)


def _zoo():
    """Graphs covering the reduction edge cases plus random suite draws."""
    import networkx as nx

    lopsided = nx.Graph()
    lopsided.add_nodes_from(range(7))
    # Node 4 is isolated; rows of very different widths.
    lopsided.add_edges_from([(0, 1), (1, 2), (2, 3), (5, 6), (1, 3), (0, 6)])
    graphs = {
        "lopsided-with-isolated": lopsided,
        "single-edge": nx.path_graph(2),
        "star": nx.star_graph(6),
        "complete": nx.complete_graph(5),
        "all-isolated": nx.empty_graph(4),
    }
    for family, seed in (("gnp", 0), ("tree", 1), ("gnp-dense", 2)):
        graphs[f"{family}-20-{seed}"] = suite_instance(
            family, 20, seed=seed
        ).graph
    return graphs


def _as_list(values):
    """Backend-portable array -> python list (single-element indexing)."""
    return [int(values[i]) for i in range(int(values.shape[0]))]


def _reference_reductions(network, slot_values, empty):
    """Per-row python-loop ground truth, independent of both code paths."""
    indptr, _ = network.csr()
    sums, maxima = [], []
    for v in range(network.n):
        row = [int(x) for x in slot_values[indptr[v] : indptr[v + 1]]]
        sums.append(sum(row))
        maxima.append(max(row) if row else empty)
    return sums, maxima


def _conformance_case(xp, plane_factory, network_like, nnz, rng):
    """Build a plane under ``xp`` and check every hot-path op against
    the numpy plane and the python-loop reference."""
    numpy_plane = plane_factory()
    with use_plane_namespace(xp):
        portable = plane_factory()
    assert portable.xp is xp
    assert numpy_plane.xp is np

    for signed in (False, True):
        lo = -50 if signed else 0
        slot_values = rng.integers(lo, 100, size=nnz, dtype=np.int64)
        empty = -1 if not signed else -(10**6)
        ref_sum, ref_max = _reference_reductions(network_like, slot_values, empty)
        assert _as_list(numpy_plane.row_sum(slot_values)) == ref_sum
        assert _as_list(portable.row_sum(xp.asarray(slot_values))) == ref_sum
        assert _as_list(numpy_plane.row_max(slot_values, empty)) == ref_max
        assert _as_list(portable.row_max(xp.asarray(slot_values), empty)) == ref_max

    flags = rng.integers(0, 2, size=nnz, dtype=np.int64)
    assert _as_list(
        xp.astype(portable.row_any(xp.asarray(flags)), xp.int64)
    ) == _as_list(numpy_plane.row_any(flags).astype(np.int64))

    per_node = rng.integers(0, 1000, size=numpy_plane.n, dtype=np.int64)
    assert _as_list(portable.gather(per_node)) == _as_list(
        numpy_plane.gather(per_node)
    )

    mask = np.asarray(rng.integers(0, 2, size=numpy_plane.n), dtype=bool)
    pending = PendingBroadcast.__new__(PendingBroadcast)
    pending.mask = mask
    sent_numpy = numpy_plane.sent_slots(pending)
    sent_portable = portable.sent_slots(pending)
    assert _as_list(xp.astype(sent_portable, xp.int64)) == _as_list(
        sent_numpy.astype(np.int64)
    )
    none_numpy = numpy_plane.sent_slots(None)
    none_portable = portable.sent_slots(None)
    assert _as_list(xp.astype(none_portable, xp.int64)) == _as_list(
        none_numpy.astype(np.int64)
    )

    # Identity tables built through the namespace agree as well.
    assert _as_list(portable.local_ids) == _as_list(numpy_plane.local_ids)
    assert _as_list(portable.local_n_of) == _as_list(numpy_plane.local_n_of)
    assert _as_list(portable.degrees) == _as_list(numpy_plane.degrees)


class TestNamespaceSeam:
    def test_default_namespace_is_numpy(self):
        assert plane_namespace() is np

    def test_set_returns_previous_and_round_trips(self):
        xp = RestrictedNumpyNamespace()
        assert set_plane_namespace(xp) is None
        try:
            assert plane_namespace() is xp
        finally:
            assert set_plane_namespace(None) is xp
        assert plane_namespace() is np

    def test_context_manager_restores_on_error(self):
        xp = RestrictedNumpyNamespace()
        with pytest.raises(RuntimeError):
            with use_plane_namespace(xp):
                assert plane_namespace() is xp
                raise RuntimeError("boom")
        assert plane_namespace() is np

    def test_plane_captures_namespace_at_construction(self):
        """A numpy plane built before a switch keeps its fast paths."""
        net = Network.congest(suite_instance("gnp", 12, seed=0).graph)
        plane = CsrPlane(net)
        with use_plane_namespace(RestrictedNumpyNamespace()):
            assert plane.xp is np
            values = np.arange(plane.nnz, dtype=np.int64)
            assert _as_list(plane.row_sum(values)) == _as_list(
                CsrPlane(net).row_sum(values)
            )


class TestRestrictedNumpyConformance:
    """The portable path stays inside the standard surface (no optional
    dependency needed: any numpy-only idiom raises ``AttributeError``)."""

    @pytest.mark.parametrize("name", sorted(_zoo()))
    def test_csr_plane_hot_path(self, name):
        graph = _zoo()[name]
        net = Network.congest(graph)
        rng = np.random.default_rng(zlib.crc32(name.encode()))
        _conformance_case(
            RestrictedNumpyNamespace(),
            lambda: CsrPlane(net),
            net,
            net.csr()[1].__len__(),
            rng,
        )

    def test_stacked_plane_hot_path(self):
        networks = [
            Network.congest(suite_instance(f, n, seed=s).graph)
            for f, n, s in (("gnp", 16, 0), ("tree", 30, 1), ("gnp-dense", 9, 2))
        ]

        class _Group:
            n = sum(net.n for net in networks)

            @staticmethod
            def csr():
                indptr = [0]
                indices = []
                base = 0
                for net in networks:
                    ip, idx = net.csr()
                    indices.extend(int(x) + base for x in idx)
                    indptr.extend(int(x) + indptr[base] for x in ip[1:])
                    base += net.n
                return indptr, indices

        rng = np.random.default_rng(7)
        _conformance_case(
            RestrictedNumpyNamespace(),
            lambda: StackedPlane(networks),
            _Group,
            sum(len(net.csr()[1]) for net in networks),
            rng,
        )


class TestArrayApiStrictConformance:
    """Same matrix against the reference strict backend (skip-if-missing)."""

    @pytest.fixture()
    def xp(self):
        return pytest.importorskip("array_api_strict")

    @pytest.mark.parametrize("name", sorted(_zoo()))
    def test_csr_plane_hot_path(self, name, xp):
        graph = _zoo()[name]
        net = Network.congest(graph)
        rng = np.random.default_rng(zlib.crc32(name.encode()))
        _conformance_case(
            xp, lambda: CsrPlane(net), net, net.csr()[1].__len__(), rng
        )

    def test_stacked_plane_arrays_are_backend_arrays(self, xp):
        networks = [
            Network.congest(suite_instance("gnp", 12, seed=s).graph)
            for s in range(2)
        ]
        with use_plane_namespace(xp):
            plane = StackedPlane(networks)
        assert plane.xp is xp
        # Strict arrays are not numpy arrays: the plane really is living
        # on the foreign backend, not silently round-tripping.
        assert not isinstance(plane.indptr, np.ndarray)
        assert not isinstance(plane.row_sum(xp.zeros(plane.nnz, dtype=xp.int64)), np.ndarray)
