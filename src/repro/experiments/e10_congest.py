"""E10 — CONGEST accounting: rounds, message sizes and congestion.

Runs the actually-simulated primitives (BFS forest, tree aggregation,
rounding execution, the distributed Lemma 3.10 loop) and reports measured
rounds against their analytic budgets and the maximum message size against
the O(log n)-bit budget.  The bit budget is *enforced* by the simulator —
a single oversized message raises — so this table doubles as evidence the
algorithms are CONGEST-honest.  The ``congestion`` column condenses each
run's per-round ``bits_per_round`` series into an equal-width histogram
(``lo-hi:rounds``), exposing the traffic shape — a BFS wave's ramp, the
greedy phases' four-step cycle — that totals alone hide.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.verify import is_dominating_set
from repro.coloring.greedy import validate_coloring
from repro.congest.network import Network, congest_bit_budget
from repro.congest.programs.bfs import run_bfs_forest
from repro.congest.programs.color_reduction import run_color_reduction
from repro.congest.programs.greedy_mds import run_distributed_greedy
from repro.congest.programs.lemma310 import run_lemma310_on_graph
from repro.congest.programs.rounding_exec import run_rounding_execution
from repro.coloring.distance2 import distance2_coloring
from repro.domsets.covering import CoveringInstance
from repro.experiments.harness import (
    ExperimentReport,
    render_congestion,
    standard_suite,
)
from repro.fractional.raising import kmw06_initial_fds
from repro.rounding.schemes import one_shot_scheme
from repro.util.transmittable import TransmittableGrid

COLUMNS = [
    "graph", "n", "primitive", "rounds", "round_budget", "max_bits",
    "bit_budget", "messages", "congestion",
]


def run(fast: bool = True) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E10",
        claim="CONGEST honesty: measured rounds and <= O(log n)-bit messages",
        columns=COLUMNS,
    )
    for inst in standard_suite(fast):
        graph = inst.graph
        if not nx.is_connected(graph):
            continue
        n = inst.n
        budget = congest_bit_budget(n)
        network = Network.congest(graph)
        diameter = nx.diameter(graph)

        # BFS forest from node 0.
        _, _, _, sim = run_bfs_forest(graph, roots=[0], network=network)
        report.add_row(
            graph=inst.name, n=n, primitive="bfs", rounds=sim.rounds,
            round_budget=diameter + 3, max_bits=sim.max_message_bits,
            bit_budget=budget, messages=sim.total_messages,
            congestion=render_congestion(sim.bits_per_round),
        )
        report.check("bfs_rounds", sim.rounds <= diameter + 3)
        report.check("bits", sim.max_message_bits <= budget)

        # Rounding execution (phase two of the abstract process).
        initial = kmw06_initial_fds(graph, eps=0.5)
        values, sim2 = run_rounding_execution(
            graph,
            initial.fds.values,
            {v: 1.0 for v in graph.nodes()},
            network=network,
        )
        report.add_row(
            graph=inst.name, n=n, primitive="rounding-exec", rounds=sim2.rounds,
            round_budget=2, max_bits=sim2.max_message_bits,
            bit_budget=budget, messages=sim2.total_messages,
            congestion=render_congestion(sim2.bits_per_round),
        )
        report.check("exec_rounds", sim2.rounds <= 2)
        report.check("bits", sim2.max_message_bits <= budget)

        # Distributed Lemma 3.10 (one-shot instance).
        delta_tilde = inst.max_degree + 1
        grid = TransmittableGrid.for_n(n)
        base = CoveringInstance.from_graph(graph, initial.fds.values)
        scheme = one_shot_scheme(base, delta_tilde, quantize=grid.up)
        participating = set(scheme.participating())
        coloring = distance2_coloring(graph, subset=participating)
        sch_values = {u: var.x for u, var in scheme.instance.value_vars.items()}
        _, _, sim3 = run_lemma310_on_graph(
            graph, sch_values, scheme.p, coloring.colors, mode="exact-product",
            grid=grid, network=network,
        )
        round_budget = 3 * max(1, coloring.num_colors) + 4
        report.add_row(
            graph=inst.name, n=n, primitive="lemma3.10-loop", rounds=sim3.rounds,
            round_budget=round_budget, max_bits=sim3.max_message_bits,
            bit_budget=budget, messages=sim3.total_messages,
            congestion=render_congestion(sim3.bits_per_round),
        )
        report.check("lemma310_rounds", sim3.rounds <= round_budget)
        report.check("bits", sim3.max_message_bits <= budget)

        # Distributed locally-maximal greedy (the pre-paper baseline).
        ds, sim4 = run_distributed_greedy(graph, network=network)
        report.add_row(
            graph=inst.name, n=n, primitive="dist-greedy", rounds=sim4.rounds,
            round_budget=8 * n + 16, max_bits=sim4.max_message_bits,
            bit_budget=budget, messages=sim4.total_messages,
            congestion=render_congestion(sim4.bits_per_round),
        )
        report.check("greedy_valid", is_dominating_set(graph, ds))
        report.check("bits", sim4.max_message_bits <= budget)

        # Distributed color reduction ([BEK15]-style final stage).
        colors, sim5 = run_color_reduction(graph, network=network)
        used = validate_coloring(graph, colors)
        report.add_row(
            graph=inst.name, n=n, primitive="color-reduction", rounds=sim5.rounds,
            round_budget=n + 2, max_bits=sim5.max_message_bits,
            bit_budget=budget, messages=sim5.total_messages,
            congestion=render_congestion(sim5.bits_per_round),
        )
        report.check("colors_delta_plus_1", used <= inst.max_degree + 1)
        report.check("bits", sim5.max_message_bits <= budget)
    return report
