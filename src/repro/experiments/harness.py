"""Shared experiment harness: suite selection, report container, rendering."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.graphs.suite import SuiteInstance, benchmark_suite
from repro.util.tables import TableFormatter

#: Families exercised in fast (CI) mode.
FAST_FAMILIES = ("gnp", "geometric", "tree")
FAST_SIZES = (40, 80)
FULL_SIZES = (60, 120, 240)


def fast_mode() -> bool:
    """Fast unless ``REPRO_FULL=1`` is exported."""
    return os.environ.get("REPRO_FULL", "0") != "1"


def standard_suite(fast: bool | None = None) -> Iterator[SuiteInstance]:
    """The instance sweep shared by the experiment tables."""
    if fast is None:
        fast = fast_mode()
    if fast:
        return benchmark_suite(sizes=FAST_SIZES, families_subset=FAST_FAMILIES)
    return benchmark_suite(sizes=FULL_SIZES)


@dataclass
class ExperimentReport:
    """Structured rows plus a rendered table.

    ``rows`` keeps raw values for assertions in tests; ``checks`` records
    named boolean guarantees so a report can certify itself.
    """

    experiment: str
    claim: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = self.checks.get(name, True) and bool(ok)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        table = TableFormatter(list(self.columns), title=f"[{self.experiment}] {self.claim}")
        for row in self.rows:
            table.add_row([row.get(c, "") for c in self.columns])
        lines = [table.render()]
        if self.checks:
            status = ", ".join(
                f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in sorted(self.checks.items())
            )
            lines.append(f"checks: {status}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
