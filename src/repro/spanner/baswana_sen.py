"""Baswana-Sen style sparse connected spanning subgraph.

The phase structure follows the paper's Section 4 description exactly:

* every node starts active, a singleton cluster;
* per phase, each surviving cluster is *sampled* with constant probability
  (1/2); a node of an unsampled cluster joins a neighboring sampled cluster
  through one edge if it can, otherwise it adds one edge to every
  neighboring cluster and becomes inactive;
* after the last phase every still-active node adds one edge per
  neighboring cluster.

With ``ceil(log2 n)`` phases the expected number of edges is
``O(n log^2 n)`` (a tighter analysis gives ``O(n log n)``) and the output is
a connected spanning subgraph of a connected input.

Sampling is pluggable: :func:`random_sampler` flips coins;
:func:`derandomized_sampler` fixes them one cluster at a time by conditional
expectations on the product-form potential

``Phi = sum_v E[edges added by v | fixed coins] + lam * E[#sampled]``.

The balance weight ``lam`` keeps the surviving-cluster count shrinking
(randomly it halves in expectation).  A forced-balance guard caps sampled
clusters at ``2/3`` of the survivors; the guard can only engage when the
potential-greedy choice would have over-sampled, and every run reports how
often it fired (tests assert it is rare and benchmarks E8 report edge counts
and halving behaviour).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Tuple

import networkx as nx

from repro.errors import GraphError
from repro.util.mathx import ceil_log2

#: A sampler maps (phase, cluster ids, cluster adjacency info) -> sampled ids.
Sampler = Callable[[int, List[int], "PhaseView"], Set[int]]


@dataclass
class PhaseView:
    """What a sampler may look at: the active structure of one phase."""

    #: cluster id -> active member nodes
    clusters: Dict[int, Set[int]]
    #: node -> ids of clusters adjacent to it (excluding its own)
    adjacent_clusters: Dict[int, Set[int]]
    #: node -> its own cluster id
    cluster_of: Dict[int, int]


@dataclass
class SpannerResult:
    """Selected edges plus per-phase diagnostics."""

    edges: Set[Tuple[int, int]]
    phases: int
    cluster_counts: List[int]
    sampled_counts: List[int]
    forced_balance_events: int = 0

    @property
    def num_edges(self) -> int:
        return len(self.edges)


def random_sampler(rng: random.Random, probability: float = 0.5) -> Sampler:
    """Independent coin per cluster per phase."""

    def sample(phase: int, cluster_ids: List[int], view: PhaseView) -> Set[int]:
        return {c for c in cluster_ids if rng.random() < probability}

    return sample


def derandomized_sampler(
    probability: float = 0.5, balance_cap: float = 2.0 / 3.0
) -> Sampler:
    """Conditional-expectation sampling (deterministic).

    Coins are fixed in cluster-id order; each choice minimizes the exact
    conditional expectation of ``edges added this phase + lam * sampled``
    under independent ``probability`` coins for the still-undecided
    clusters.  The per-node expectation has closed product form because a
    node's added edges depend only on its adjacent clusters' coins.
    """
    stats = {"forced": 0}

    def sample(phase: int, cluster_ids: List[int], view: PhaseView) -> Set[int]:
        cluster_ids = sorted(cluster_ids)
        n_clusters = len(cluster_ids)
        if n_clusters == 0:
            return set()
        # Node-side bookkeeping: for each node, the number of adjacent
        # clusters still undecided, number decided-sampled, and list size.
        decided: Dict[int, bool] = {}

        def node_expected_edges(v: int) -> float:
            own = view.cluster_of[v]
            adj = view.adjacent_clusters[v]
            k = len(adj)
            # probability own cluster is unsampled
            if own in decided:
                p_own_unsampled = 0.0 if decided[own] else 1.0
            else:
                p_own_unsampled = 1.0 - probability
            if p_own_unsampled == 0.0:
                return 0.0
            # probability no adjacent cluster sampled
            p_none = 1.0
            for c in adj:
                if c in decided:
                    if decided[c]:
                        p_none = 0.0
                        break
                else:
                    p_none *= 1.0 - probability
            # 1 edge if some adjacent sampled, k edges if none
            return p_own_unsampled * ((1.0 - p_none) * 1.0 + p_none * k)

        # Only nodes adjacent to a cluster matter for the potential; the
        # balance weight makes each sampling "cost" about one average
        # node-degree worth of edges.
        relevant = sorted(view.adjacent_clusters)
        total_adj = sum(len(view.adjacent_clusters[v]) for v in relevant)
        lam = max(1.0, total_adj / max(1, n_clusters))

        # Affected nodes per cluster (own members + nodes adjacent to it).
        affected: Dict[int, Set[int]] = {c: set(view.clusters[c]) for c in cluster_ids}
        for v in relevant:
            for c in view.adjacent_clusters[v]:
                affected[c].add(v)

        sampled: Set[int] = set()
        max_sampled = max(1, int(math.floor(balance_cap * n_clusters)))
        for c in cluster_ids:
            if len(sampled) >= max_sampled:
                decided[c] = False
                stats["forced"] += 1
                continue
            base = {v: node_expected_edges(v) for v in affected[c]}
            decided[c] = True
            cost_sampled = sum(node_expected_edges(v) for v in affected[c]) + lam
            decided[c] = False
            cost_unsampled = sum(node_expected_edges(v) for v in affected[c])
            # Unused 'base' kept implicit: both branches re-evaluate fully.
            del base
            if cost_sampled < cost_unsampled:
                decided[c] = True
                sampled.add(c)
            else:
                decided[c] = False
        if not sampled and n_clusters > 1:
            # Degenerate guard: always sample at least the smallest cluster
            # so progress (cluster merging) is possible.
            sampled.add(cluster_ids[0])
        return sampled

    sample.stats = stats  # type: ignore[attr-defined]
    return sample


def baswana_sen_spanner(
    graph: nx.Graph,
    sampler: Sampler,
    phases: int | None = None,
) -> SpannerResult:
    """Run the phase process on ``graph`` and return the selected edges."""
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("spanner requires a non-empty graph")
    if phases is None:
        phases = max(1, ceil_log2(max(2, n)))

    active: Set[int] = set(graph.nodes())
    cluster_of: Dict[int, int] = {v: v for v in graph.nodes()}
    edges: Set[Tuple[int, int]] = set()
    cluster_counts: List[int] = []
    sampled_counts: List[int] = []

    def norm(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    for phase in range(phases):
        clusters: Dict[int, Set[int]] = {}
        for v in active:
            clusters.setdefault(cluster_of[v], set()).add(v)
        cluster_ids = sorted(clusters)
        cluster_counts.append(len(cluster_ids))
        if len(cluster_ids) <= 1:
            sampled_counts.append(len(cluster_ids))
            break

        adjacent: Dict[int, Set[int]] = {}
        witness: Dict[int, Dict[int, int]] = {}
        for v in active:
            adj: Set[int] = set()
            wit: Dict[int, int] = {}
            for u in sorted(graph.neighbors(v)):
                if u in active and cluster_of[u] != cluster_of[v]:
                    c = cluster_of[u]
                    if c not in wit:
                        wit[c] = u
                    adj.add(c)
            adjacent[v] = adj
            witness[v] = wit

        view = PhaseView(
            clusters=clusters, adjacent_clusters=adjacent, cluster_of=dict(cluster_of)
        )
        sampled = set(sampler(phase, cluster_ids, view))
        sampled_counts.append(len(sampled))

        for v in sorted(active):
            if cluster_of[v] in sampled:
                continue
            sampled_adjacent = sorted(c for c in adjacent[v] if c in sampled)
            if sampled_adjacent:
                target = sampled_adjacent[0]
                edges.add(norm(v, witness[v][target]))
                cluster_of[v] = target
            else:
                for c in sorted(adjacent[v]):
                    edges.add(norm(v, witness[v][c]))
                active.discard(v)
                cluster_of.pop(v, None)

    # Final phase: remaining active nodes add one edge per neighboring
    # cluster (smallest-ID witness per cluster).
    for v in sorted(active):
        wit: Dict[int, int] = {}
        for u in sorted(graph.neighbors(v)):
            if u in active and cluster_of[u] != cluster_of[v]:
                wit.setdefault(cluster_of[u], u)
        for c in sorted(wit):
            edges.add(norm(v, wit[c]))

    forced = getattr(sampler, "stats", {}).get("forced", 0)
    return SpannerResult(
        edges=edges,
        phases=phases,
        cluster_counts=cluster_counts,
        sampled_counts=sampled_counts,
        forced_balance_events=forced,
    )


def spanner_subgraph(graph: nx.Graph, result: SpannerResult) -> nx.Graph:
    """The spanner as a graph, including intra-cluster joining structure.

    Spanner edges are edges of ``graph``; every node appears even if
    isolated in the spanner (singleton clusters that merged immediately).
    """
    sub = nx.Graph()
    sub.add_nodes_from(graph.nodes())
    for u, v in result.edges:
        if not graph.has_edge(u, v):
            raise GraphError(f"spanner selected non-edge ({u}, {v})")
        sub.add_edge(u, v)
    return sub
