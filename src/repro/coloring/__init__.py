"""Colorings: proper vertex colorings of conflict graphs, distance-2
colorings (Lemma 3.12), distributed color reduction, and a Linial-style
O(Delta^2 polylog)-color algorithm built from cover-free set families.
"""

from repro.coloring.greedy import (
    color_classes,
    greedy_coloring,
    validate_coloring,
)
from repro.coloring.distance2 import (
    bipartite_distance2_coloring,
    distance2_coloring,
)
from repro.coloring.linial import linial_coloring
from repro.coloring.reduction import reduce_coloring

__all__ = [
    "greedy_coloring",
    "color_classes",
    "validate_coloring",
    "distance2_coloring",
    "bipartite_distance2_coloring",
    "linial_coloring",
    "reduce_coloring",
]
