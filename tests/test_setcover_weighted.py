"""Section 5 generalizations: set cover and weighted dominating set."""

import itertools
import math

import networkx as nx
import pytest

from repro.analysis.verify import is_dominating_set
from repro.errors import GraphError, InfeasibleSolutionError
from repro.graphs.generators import star_graph
from repro.setcover.instance import SetCoverInstance, random_setcover_instance
from repro.setcover.solve import approx_min_set_cover, greedy_set_cover
from repro.weighted.mds import approx_weighted_mds, greedy_weighted_mds


def brute_force_set_cover(instance):
    ids = sorted(instance.sets)
    best = None
    for size in range(1, len(ids) + 1):
        for combo in itertools.combinations(ids, size):
            if instance.is_cover(combo):
                weight = instance.cover_weight(combo)
                if best is None or weight < best:
                    best = weight
        if best is not None and instance.weights is None:
            return best  # unweighted: first feasible size is optimal
    return best


class TestSetCoverInstance:
    def test_uncoverable_rejected(self):
        with pytest.raises(InfeasibleSolutionError):
            SetCoverInstance.from_iterables({0: [1]}, universe=[1, 2])

    def test_stats(self):
        inst = SetCoverInstance.from_iterables(
            {0: [1, 2], 1: [2, 3], 2: [3]}, universe=[1, 2, 3]
        )
        assert inst.max_element_frequency == 2
        assert inst.max_set_size == 2

    def test_to_covering_structure(self):
        inst = SetCoverInstance.from_iterables(
            {0: [1, 2], 1: [2, 3]}, universe=[1, 2, 3]
        )
        covering = inst.to_covering()
        assert covering.num_vars == 2
        assert covering.num_constraints == 3
        # Element 2 is covered by both sets.
        members = {cn.members for cn in covering.constraints.values()}
        assert (0, 1) in members

    def test_random_instance_always_coverable(self):
        for seed in range(5):
            inst = random_setcover_instance(30, 10, 5, seed=seed)
            assert inst.is_cover(inst.sets.keys())

    def test_weights(self):
        inst = random_setcover_instance(20, 8, 5, seed=1, weighted=True)
        assert all(w > 1.0 for w in inst.weights.values())
        assert inst.cover_weight([0, 0, 1]) == inst.weight_of(0) + inst.weight_of(1)


class TestGreedySetCover:
    def test_covers(self):
        inst = random_setcover_instance(40, 15, 7, seed=2)
        assert inst.is_cover(greedy_set_cover(inst))

    def test_harmonic_bound_vs_optimum(self):
        inst = random_setcover_instance(16, 8, 5, seed=3)
        greedy_w = inst.cover_weight(greedy_set_cover(inst))
        opt = brute_force_set_cover(inst)
        h = sum(1.0 / i for i in range(1, inst.max_set_size + 1))
        assert greedy_w <= h * opt + 1e-9

    def test_weighted_prefers_cheap(self):
        inst = SetCoverInstance.from_iterables(
            {0: [1, 2, 3], 1: [1, 2], 2: [3]},
            universe=[1, 2, 3],
            weights={0: 100.0, 1: 1.0, 2: 1.0},
        )
        chosen = greedy_set_cover(inst)
        assert chosen == {1, 2}


class TestDerandomizedSetCover:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_valid_and_bounded(self, weighted):
        inst = random_setcover_instance(50, 20, 8, seed=4, weighted=weighted)
        result = approx_min_set_cover(inst)
        assert inst.is_cover(result.chosen)
        f = inst.max_element_frequency
        assert result.weight <= (math.log(max(2, f)) + 2.0) * result.lp_optimum + 1e-6

    def test_deterministic(self):
        inst = random_setcover_instance(30, 12, 6, seed=5)
        a = approx_min_set_cover(inst)
        b = approx_min_set_cover(inst)
        assert a.chosen == b.chosen

    def test_vs_brute_force_small(self):
        inst = random_setcover_instance(14, 7, 5, seed=6)
        result = approx_min_set_cover(inst)
        opt = brute_force_set_cover(inst)
        assert result.weight <= (math.log(max(2, inst.max_element_frequency)) + 2) * opt + 1e-9


class TestWeightedMDS:
    def test_uniform_weights_match_unweighted_shape(self, medium_gnp):
        weights = {v: 1.0 for v in medium_gnp.nodes()}
        result = approx_weighted_mds(medium_gnp, weights)
        assert is_dominating_set(medium_gnp, result.dominating_set)
        assert result.weight == len(result.dominating_set)

    def test_respects_weights(self):
        """Star where the center is expensive: the LP + rounding should not
        pay more than ln-factor over the cheap-leaf optimum."""
        g = star_graph(6)
        center = max(g.nodes(), key=g.degree)
        weights = {v: (50.0 if v == center else 1.0) for v in g.nodes()}
        result = approx_weighted_mds(g, weights)
        assert is_dominating_set(g, result.dominating_set)
        greedy_w = sum(
            weights[v] for v in greedy_weighted_mds(g, weights)
        )
        assert result.weight <= max(3.0 * greedy_w, 10.0)

    def test_bound_vs_weighted_lp(self, small_gnp):
        import random

        rng = random.Random(3)
        weights = {v: 1.0 + 4.0 * rng.random() for v in small_gnp.nodes()}
        result = approx_weighted_mds(small_gnp, weights)
        delta_tilde = max(d for _, d in small_gnp.degree()) + 1
        total_w = sum(weights.values())
        bound = (
            math.log(delta_tilde) * (result.lp_optimum * 1.5)
            + total_w / delta_tilde ** 1  # loose additive for joins
            + 1.0
        )
        assert result.weight <= bound

    def test_weight_validation(self, path5):
        with pytest.raises(GraphError):
            approx_weighted_mds(path5, {0: -1.0})
        with pytest.raises(GraphError):
            approx_weighted_mds(nx.Graph(), {})

    def test_greedy_weighted_valid(self, zoo_graph):
        weights = {v: 1.0 + (v % 3) for v in zoo_graph.nodes()}
        ds = greedy_weighted_mds(zoo_graph, weights)
        assert is_dominating_set(zoo_graph, ds)

    def test_deterministic(self, small_gnp):
        weights = {v: 1.0 + (v % 5) for v in small_gnp.nodes()}
        a = approx_weighted_mds(small_gnp, weights)
        b = approx_weighted_mds(small_gnp, weights)
        assert a.dominating_set == b.dominating_set
