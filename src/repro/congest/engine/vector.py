"""Vectorized numpy message-plane engine.

The paper's algorithms are dominated by *fixed-shape broadcast rounds*:
every sending node broadcasts the same small message — one tag plus a few
bounded integer fields — to all of its neighbors.  For that traffic pattern
the round loop does not need per-message ``dict`` work at all: a round is
fully described by a **sender mask** plus one numpy column per declared
field, and both delivery (gather through the CSR topology) and wire
accounting (bit lengths, per-round totals, the CONGEST budget check) become
O(1) array operations over the edge slots.

Three pieces cooperate:

* :class:`MessageSpec` — a program's declaration that one of its phases
  broadcasts a fixed ``tag`` with named small-int fields.  The spec can
  compute the *exact* wire size of a whole column of messages at once
  (:meth:`MessageSpec.bits_array` replicates
  :func:`repro.congest.message.message_bits` bit for bit), which is what
  keeps ``bits_per_round`` / ``messages_per_round`` identical to the
  reference engine.
* :class:`VectorKernel` — a per-program-class state machine over flat numpy
  arrays.  A kernel re-expresses the program's ``receive`` transition as
  scatter/gather over the :class:`CsrPlane`; program modules register their
  kernel with :func:`register_kernel`.
* :class:`VectorEngine` — the engine.  It runs ``setup`` and any
  non-conforming prefix of rounds through the exact
  :class:`~repro.congest.engine.fast.FastEngine` scalar mechanics, then
  hands the live state to the kernel at its declared ``takeover_round`` and
  finishes the run with vectorized rounds.  Runs whose programs declare no
  :attr:`~repro.congest.node.NodeProgram.message_specs`, have no registered
  kernel, or queue non-broadcast traffic at the handover point fall back to
  ``FastEngine`` semantics — the parity suite
  (``tests/test_engine_parity.py``) proves all three engines
  observationally identical either way.

In a *solo* run the handover is one-directional (scalar → vector) and
happens at most once: fully-broadcast programs (greedy MDS, rounding
execution, color reduction) take over at round 1, and so does the
Lemma 3.10 loop on its canonical uniform inputs — its color-class rounds
run *in-plane*, with the targeted ``alpha`` sends expressed as
:class:`PendingTargeted` slot traffic and a round optionally carrying
several differently-tagged parts at once.  On heterogeneous inputs the
loop instead runs those rounds under scalar semantics and vectorizes the
final execution-phase broadcasts (takeover at ``2 + 3*num_colors``; the
takeover round is per-instance, input-dependent state).  In a *stacked* run
(:mod:`repro.congest.engine.batched`) the boundary is crossed **per
instance**: instances whose takeover round has not arrived keep executing
scalar rounds against the shared global clock while already-absorbed
instances run on the plane, and each scalar instance's traffic is folded
into the vectorized ledger every round — the handover machinery is
two-directional for the duration of the run.  See
:meth:`VectorKernel.stacked_blank` / :meth:`VectorKernel.absorb_instance`.

The plane itself is backend-agnostic: every :class:`CsrPlane` hot-path
operation routes through :func:`plane_namespace`, an array-namespace seam
defaulting to numpy.  Under numpy the exact ``reduceat`` fast paths run
unchanged; under any other array-API namespace (``array-api-strict`` for
conformance testing, CuPy for GPUs) the same reductions run through
portable segment kernels — cumulative-sum differences for segment sums,
log-doubling sweeps for segment maxima — so switching backends is a
:func:`use_plane_namespace` call rather than a rewrite.  The seam covers
the plane (topology arrays plus row reductions, gathers and sender-slot
expansion); the engine loops and kernels above it still assume
numpy-compatible semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.congest.engine.base import Engine, SimulationResult, register_engine
from repro.congest.engine.fast import _EMPTY_INBOX, FastEngine, Inboxes
from repro.congest.message import (
    FIELD_FRAMING_BITS,
    MESSAGE_HEADER_BITS,
)
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import (
    BatchEligibilityError,
    CongestError,
    MessageTooLargeError,
    SimulationLimitError,
)

__all__ = [
    "CsrPlane",
    "MessageSpec",
    "PendingBroadcast",
    "VectorEngine",
    "VectorKernel",
    "kernel_for",
    "plane_namespace",
    "register_kernel",
    "set_plane_namespace",
    "use_plane_namespace",
]

#: The configured array namespace for plane arrays; ``None`` means numpy.
_PLANE_NAMESPACE = None


def plane_namespace():
    """The active array namespace for message-plane arrays.

    This is the backend seam: :class:`CsrPlane` (and the stacked plane
    built on it) capture the namespace returned here at construction and
    route every hot-path operation through it.  Defaults to numpy;
    configure another array-API namespace (``array_api_strict``, CuPy)
    with :func:`set_plane_namespace` or :func:`use_plane_namespace`.
    """
    return np if _PLANE_NAMESPACE is None else _PLANE_NAMESPACE


def set_plane_namespace(xp):
    """Install ``xp`` as the plane's array namespace; returns the previous.

    ``None`` restores the numpy default.  The namespace must implement the
    array API standard operations the plane uses (``asarray``, ``astype``,
    ``take``, ``where``, ``maximum``, ``cumulative_sum``, ``searchsorted``
    and the basic constructors); numpy itself always qualifies and keeps
    its exact ``reduceat`` fast paths.
    """
    global _PLANE_NAMESPACE
    previous = _PLANE_NAMESPACE
    _PLANE_NAMESPACE = xp
    return previous


@contextmanager
def use_plane_namespace(xp):
    """Context manager: run a block with ``xp`` as the plane namespace."""
    previous = set_plane_namespace(xp)
    try:
        yield xp
    finally:
        set_plane_namespace(previous)

#: Largest field value whose bit length the float64 ``frexp`` trick recovers
#: exactly.  CONGEST fields are O(log n)-bit by design, so this is purely a
#: guard against kernel bugs.
_MAX_EXACT_FIELD = 1 << 53


def bit_length_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.congest.message.bits_of_int`.

    ``frexp`` returns the binary exponent of each value, which for positive
    integers below 2**53 is exactly the bit length; zeros are charged one
    bit, matching the scalar accounting.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and int(values.min()) < 0:
        raise CongestError("message fields must be non-negative")
    if values.size and int(values.max()) >= _MAX_EXACT_FIELD:
        raise CongestError("message field too large for vectorized accounting")
    _, exponents = np.frexp(values.astype(np.float64))
    return np.where(values > 0, exponents, 1).astype(np.int64)


class MessageSpec:
    """Shape declaration for one fixed-form broadcast message family.

    ``tag`` is the message tag; ``fields`` are the names of its integer
    fields, in wire order.  A program lists the specs of its vector-eligible
    broadcast phases in :attr:`NodeProgram.message_specs`; kernels use them
    to build outbound columns and to account wire bits exactly.
    """

    __slots__ = ("tag", "fields")

    def __init__(self, tag: str, *fields: str):
        self.tag = tag
        self.fields = fields

    @property
    def arity(self) -> int:
        return len(self.fields)

    def bits_array(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Exact per-sender wire size for one column of messages.

        Replicates ``MESSAGE_HEADER_BITS + sum(FIELD_FRAMING_BITS +
        bit_length(field))`` over whole arrays.
        """
        if len(columns) != self.arity:
            raise CongestError(
                f"spec {self.tag!r} expects {self.arity} fields, "
                f"got {len(columns)} columns"
            )
        if not columns:
            raise CongestError(f"spec {self.tag!r} declares no fields")
        base = MESSAGE_HEADER_BITS + FIELD_FRAMING_BITS * self.arity
        total = np.full(columns[0].shape, base, dtype=np.int64)
        for column in columns:
            total += bit_length_array(column)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageSpec({self.tag!r}, fields={self.fields!r})"


class PendingBroadcast:
    """One round's in-flight broadcast traffic, in columnar form.

    ``mask[v]`` says whether node ``v`` broadcast this round; ``columns``
    holds one full-length int64 array per spec field (entries of
    non-senders are ignored); ``bits`` is the exact per-sender message
    size.  Messages physically exist only on the wires of senders with at
    least one neighbor — accounting and delivery both respect that.
    """

    __slots__ = ("spec", "mask", "columns", "bits")

    def __init__(
        self,
        spec: MessageSpec,
        mask: np.ndarray,
        columns: Tuple[np.ndarray, ...],
        bits: np.ndarray,
    ):
        self.spec = spec
        self.mask = mask
        self.columns = columns
        self.bits = bits


class PendingTargeted:
    """One round's in-flight *targeted* traffic, addressed per CSR slot.

    The broadcast plane cannot express a round where each sender picks one
    recipient (``ctx.send``), so targeted phases — Lemma 3.10's alpha
    quotes — ride in receiver-side slot form: slot ``s`` of row ``v``
    (``indptr[v] <= s < indptr[v+1]``) carries a message from ``v``'s
    peer ``indices[s]`` to ``v`` iff ``slot_mask[s]``.  ``columns`` holds
    one slot-length int64 array per field and ``bits`` the exact
    per-message wire size; unmasked entries are ignored.  Exactly one
    message per masked slot travels on the wire, so accounting is a
    masked sum instead of the broadcast's degree weighting.
    """

    __slots__ = ("spec", "slot_mask", "columns", "bits")

    def __init__(
        self,
        spec: MessageSpec,
        slot_mask: np.ndarray,
        columns: Tuple[np.ndarray, ...],
        bits: np.ndarray,
    ):
        self.spec = spec
        self.slot_mask = slot_mask
        self.columns = columns
        self.bits = bits


#: What a kernel may hand the round loop: nothing, one broadcast, one
#: targeted batch, or several of them at once (a ragged stacked plane can
#: have instances in different protocol phases, so one plane round may
#: carry differently-tagged traffic side by side).
PendingTraffic = Union[
    None, PendingBroadcast, PendingTargeted, Tuple[object, ...]
]


def pending_parts(pending: PendingTraffic) -> Tuple[object, ...]:
    """Normalize a kernel's outbound traffic to a tuple of parts."""
    if pending is None:
        return ()
    if isinstance(pending, tuple):
        return pending
    return (pending,)


class CsrPlane:
    """Array view of a network's CSR topology plus exact row reductions.

    ``indices[indptr[v]:indptr[v+1]]`` are the neighbors of ``v`` (the
    *slots* of row ``v``).  The plane captures :func:`plane_namespace` at
    construction.  Under numpy, row reductions use ``ufunc.reduceat`` over
    the non-empty rows only; under any other array-API namespace the same
    reductions run through portable segment kernels (cumulative-sum
    differences, log-doubling maxima).  Either way isolated nodes are
    handled without branching and all arithmetic stays in int64
    (bit-exact, unlike float matvecs).
    """

    __slots__ = (
        "n",
        "nnz",
        "xp",
        "indptr",
        "indices",
        "degrees",
        "local_n",
        "local_ids",
        "local_n_of",
        "_nonempty",
        "_starts",
        "_slot_row_end",
        "_max_degree",
    )

    def __init__(self, network: Network):
        indptr, indices = network.csr()
        self._init_arrays(_as_int64(indptr), _as_int64(indices))
        # A solo plane is its own single instance: local identifiers and the
        # locally-known network size coincide with the global ones.  The
        # stacked plane (engine/batched.py) overrides both so kernels keep
        # computing with per-instance semantics (packed-key bases, id fields
        # on the wire) no matter how many instances share the arrays.
        # ``local_n_of`` is the per-node view of "the n my instance believes
        # it runs on" — the quantity stackable kernels must base packed keys
        # and round schedules on, because a *ragged* stacked plane holds
        # instances of different sizes (``local_n`` is then ``None``).
        xp = self.xp
        self.local_n = self.n
        self.local_ids = xp.arange(self.n, dtype=xp.int64)
        self.local_n_of = xp.full(self.n, self.n, dtype=xp.int64)

    def _init_arrays(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        xp = plane_namespace()
        self.xp = xp
        if xp is not np:
            indptr = xp.asarray(np.asarray(indptr), dtype=xp.int64)
            indices = xp.asarray(np.asarray(indices), dtype=xp.int64)
        self.indptr = indptr
        self.indices = indices
        self.n = int(indptr.shape[0]) - 1
        self.nnz = int(indices.shape[0])
        self.degrees = self.indptr[1:] - self.indptr[:-1]
        if xp is np:
            self._nonempty = self.degrees > 0
            self._starts = self.indptr[:-1][self._nonempty]
            self._slot_row_end = None
            self._max_degree = None
        else:
            # Portable-path helper tables: the row-end slot index of every
            # slot (for the log-doubling segment max) and the widest row
            # (its doubling depth).  Built once; the per-round reductions
            # below touch only array-API standard operations.
            self._nonempty = None
            self._starts = None
            if self.nnz:
                slots = xp.arange(self.nnz, dtype=xp.int64)
                rows = xp.searchsorted(self.indptr, slots, side="right") - 1
                self._slot_row_end = xp.take(self.indptr, rows + 1)
            else:
                self._slot_row_end = xp.zeros(0, dtype=xp.int64)
            self._max_degree = int(xp.max(self.degrees)) if self.n else 0

    def _as_i64(self, values):
        """Coerce slot values to an int64 array of the plane's namespace."""
        xp = self.xp
        values = xp.asarray(values)
        if values.dtype != xp.int64:
            values = xp.astype(values, xp.int64)
        return values

    def row_sum(self, slot_values: np.ndarray) -> np.ndarray:
        """Per-node sum of ``slot_values`` over each node's slots."""
        if self.xp is np:
            out = np.zeros(self.n, dtype=np.int64)
            if self._starts.size:
                values = np.asarray(slot_values).astype(np.int64, copy=False)
                out[self._nonempty] = np.add.reduceat(values, self._starts)
            return out
        xp = self.xp
        csum = xp.cumulative_sum(self._as_i64(slot_values), include_initial=True)
        return xp.take(csum, self.indptr[1:]) - xp.take(csum, self.indptr[:-1])

    def row_max(self, slot_values: np.ndarray, empty: int) -> np.ndarray:
        """Per-node max of ``slot_values``; ``empty`` for isolated nodes."""
        if self.xp is np:
            out = np.full(self.n, empty, dtype=np.int64)
            if self._starts.size:
                values = np.asarray(slot_values).astype(np.int64, copy=False)
                out[self._nonempty] = np.maximum.reduceat(values, self._starts)
            return out
        xp = self.xp
        if not self.nnz:
            return xp.full(self.n, empty, dtype=xp.int64)
        # Log-doubling suffix sweep: after k passes, ``maxima[i]`` holds the
        # max of slots [i, min(i + 2**k, row_end(i))), so each row's max
        # lands on its first slot after ceil(log2(max_degree)) passes.
        maxima = self._as_i64(slot_values)
        slots = xp.arange(self.nnz, dtype=xp.int64)
        offset = 1
        while offset < self._max_degree:
            reach = slots + offset
            source = xp.where(reach < self.nnz, reach, self.nnz - 1)
            shifted = xp.take(maxima, source)
            maxima = xp.where(
                reach < self._slot_row_end, xp.maximum(maxima, shifted), maxima
            )
            offset <<= 1
        starts = self.indptr[:-1]
        heads = xp.take(
            maxima, xp.where(starts < self.nnz, starts, self.nnz - 1)
        )
        return xp.where(
            self.degrees > 0, heads, xp.full(self.n, empty, dtype=xp.int64)
        )

    def row_any(self, slot_flags: np.ndarray) -> np.ndarray:
        """Per-node "any slot true" as a boolean array."""
        return self.row_sum(slot_flags) > 0

    def sent_slots(self, pending: Optional[PendingBroadcast]) -> np.ndarray:
        """Slot-level sender flags for one round of broadcast traffic."""
        xp = self.xp
        if pending is None:
            return (
                np.zeros(self.nnz, dtype=bool)
                if xp is np
                else xp.zeros(self.nnz, dtype=xp.bool)
            )
        if xp is np:
            return pending.mask[self.indices]
        return xp.take(xp.asarray(pending.mask), self.indices)

    def gather(self, per_node: np.ndarray) -> np.ndarray:
        """Slot-level view of a per-node array (value of each slot's peer)."""
        if self.xp is np:
            return per_node[self.indices]
        return self.xp.take(self.xp.asarray(per_node), self.indices)


def _as_int64(values) -> np.ndarray:
    if isinstance(values, array) and values.itemsize == 8:
        return np.frombuffer(values, dtype=np.int64)
    return np.asarray(values, dtype=np.int64)


class VectorKernel(ABC):
    """Vectorized state machine for one node-program class.

    A kernel is constructed at handover time with the plane and the live
    per-node program/context state; from then on :meth:`step` is the whole
    round: consume the inbound :class:`PendingBroadcast`, update state,
    record outputs/halts, and return the next round's outbound broadcast
    (or ``None`` for a silent round).  The engine owns accounting and
    termination; the kernel owns semantics.
    """

    #: Filled in by :func:`register_kernel`.
    program_class: Type[NodeProgram]

    #: Stacking contract (see :mod:`repro.congest.engine.batched`): ``True``
    #: iff K independent instances of this kernel may execute as one stacked
    #: message plane.  Requires per-node transitions that consult only
    #: intra-instance data: ``plane.local_n_of`` / ``plane.local_ids``
    #: instead of global ids and the global ``plane.n``, and never
    #: ``self.network`` (a stacked run has no single network).  Stacked
    #: planes may be *ragged* — instances of different sizes — so
    #: per-instance quantities (packed-key bases, round schedules) must come
    #: from the per-node ``local_n_of`` array, never from a single scalar
    #: ``n``.  Instances need not enter the plane in lockstep: a kernel
    #: whose ``takeover_round`` exceeds 1 must implement
    #: :meth:`absorb_instance` (usually together with
    #: :attr:`prologue_oracle`), and the stacked runner executes each
    #: instance's scalar prologue against the shared global clock before
    #: absorbing its state into the plane at its own takeover round.
    stackable = True

    @classmethod
    def _blank(cls, plane: "CsrPlane") -> "VectorKernel":
        """Bare kernel shell for :meth:`stacked_setup` implementations.

        Bypasses ``__init__`` (there are no per-node program objects to
        read state from); every node starts live with no outputs, exactly
        the state after a setup phase that neither outputs nor halts.
        """
        self = cls.__new__(cls)
        self.plane = plane
        self.network = None
        self.live = np.ones(plane.n, dtype=bool)
        self._outputs = {}
        return self

    #: Vectorized boot (optional, stacked runs only): subclasses may bind a
    #: classmethod ``stacked_setup(plane, inputs) -> (kernel, pending)``
    #: that replaces per-node program instantiation, scalar ``setup`` and
    #: handover collection with direct array initialization.  ``inputs`` is
    #: one optional ``{node: input}`` mapping per instance (local ids);
    #: implementations translate local to global ids through the plane's
    #: ragged offset tables (``plane.node_offsets[k]`` is instance ``k``'s
    #: first global node, ``plane.local_ns[k]`` its size — instances need
    #: not share one size).  The implementation must reproduce the scalar
    #: boot bit for bit: same initial state, same round-1 broadcast
    #: mask/columns/bits.  A ``None`` *attribute* means the stacked runner
    #: always boots through the scalar path; an implementation may also
    #: *return* ``None`` to decline one particular group (a kernel whose
    #: round-1 takeover is conditional on the inputs, e.g. lemma310's
    #: canonical gate), which sends that group through the scalar boot
    #: and the per-instance takeover machinery.
    stacked_setup = None

    #: Scalar-prologue actor oracle (optional, stacked runs only): a
    #: classmethod ``prologue_oracle(network, programs) ->
    #: Callable[[int], Optional[np.ndarray]]`` mapping a *local* round
    #: number to the sorted array of local node ids whose ``receive`` can
    #: act that round (``None`` = every active node must run).  The stacked
    #: runner uses it to skip provably no-op ``receive`` calls while an
    #: instance is still in its scalar prologue; skipping a node must be
    #: observationally identical to delivering its (empty) inbox that
    #: round.  ``None`` disables the optimization.
    prologue_oracle = None

    @classmethod
    def stacked_blank(cls, plane: "CsrPlane") -> "VectorKernel":
        """Kernel shell for stacked runs with per-instance takeover rounds.

        Like :meth:`_blank` but every node starts *dead*: instances light
        up their slice of the plane only when :meth:`absorb_instance`
        hands their scalar-prologue state over.  Subclasses with extra
        per-node state arrays override this to allocate them (zeroed) at
        full plane width.
        """
        kernel = cls._blank(plane)
        kernel.live = np.zeros(plane.n, dtype=bool)
        return kernel

    def absorb_instance(
        self,
        lo: int,
        hi: int,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
    ) -> None:
        """Load one instance's scalar state into plane slice ``[lo, hi)``.

        Called by the stacked runner at the instance's takeover round with
        that instance's per-node programs and contexts (*local* ids;
        global id = local id + ``lo``).  Implementations must set
        ``self.live[lo:hi]`` from the contexts' halted flags and fill
        every per-node state array exactly as ``__init__`` would for a
        solo run.  The default refuses — kernels that take over at round 1
        never need it, and the stacked runner converts the refusal into a
        per-cell fallback.
        """
        raise BatchEligibilityError(
            f"{type(self).__name__} cannot absorb a scalar prologue; "
            "kernels with takeover_round > 1 must implement absorb_instance"
        )

    def __init__(
        self,
        plane: CsrPlane,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
    ):
        self.plane = plane
        self.network = network
        self.live = np.fromiter(
            (not contexts[v]._halted for v in range(plane.n)),
            dtype=bool,
            count=plane.n,
        )
        self._outputs: Dict[int, Dict[str, object]] = {}

    @classmethod
    def eligible(
        cls, network: Network, programs: Dict[int, NodeProgram]
    ) -> bool:
        """Whether this run's inputs fit the vectorized implementation."""
        return True

    @classmethod
    def takeover_round(
        cls, network: Network, programs: Dict[int, NodeProgram]
    ) -> int:
        """First round to execute vectorized (rounds before it run scalar)."""
        return 1

    @property
    def live_count(self) -> int:
        return int(self.live.sum())

    def output(self, node: int, key: str, value: object) -> None:
        """Record one node's local output (mirrors ``Context.output``)."""
        self._outputs.setdefault(node, {})[key] = value

    def write_outputs(self, outputs: Dict[int, Dict[str, object]]) -> None:
        """Merge kernel-recorded outputs over the scalar-phase outputs."""
        for node, values in self._outputs.items():
            outputs[node].update(values)

    @abstractmethod
    def step(
        self, round_no: int, inbound: Optional[PendingBroadcast]
    ) -> Optional[PendingBroadcast]:
        """Execute one delivered round; return next round's sends."""


_KERNELS: Dict[Type[NodeProgram], Type[VectorKernel]] = {}


def register_kernel(program_cls: Type[NodeProgram]):
    """Class decorator: attach a kernel to a node-program class."""

    def decorate(kernel_cls: Type[VectorKernel]) -> Type[VectorKernel]:
        kernel_cls.program_class = program_cls
        _KERNELS[program_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_for(program_cls: Type[NodeProgram]) -> Optional[Type[VectorKernel]]:
    """The registered kernel for a program class, if any."""
    return _KERNELS.get(program_cls)


#: Sentinel: the queued traffic at the handover point was not a conforming
#: single-tag full broadcast, so the run must stay on scalar semantics.
_NONCONFORMING = object()


@register_engine
class VectorEngine(Engine):
    """Numpy message-plane engine with scalar fallback (see module doc)."""

    name = "vector"

    def __init__(self) -> None:
        self._scalar = FastEngine()

    def run(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        kernel_cls = self._kernel_class(programs)
        if kernel_cls is None or not kernel_cls.eligible(network, programs):
            return self._scalar.run(network, programs, contexts, max_rounds)
        return self._run_hybrid(
            kernel_cls, network, programs, contexts, max_rounds
        )

    # -- eligibility ---------------------------------------------------------

    @staticmethod
    def _kernel_class(
        programs: Dict[int, NodeProgram],
    ) -> Optional[Type[VectorKernel]]:
        """The kernel to use, or ``None`` when the run must stay scalar.

        Requires a homogeneous program population whose class both declares
        :attr:`NodeProgram.message_specs` (the per-phase opt-in) and has a
        registered kernel.
        """
        if not programs:
            return None
        cls = type(programs[0])
        if not getattr(cls, "message_specs", ()):
            return None
        kernel_cls = _KERNELS.get(cls)
        if kernel_cls is None:
            return None
        if any(type(p) is not cls for p in programs.values()):
            return None
        return kernel_cls

    # -- hybrid loop ---------------------------------------------------------

    def _run_hybrid(
        self,
        kernel_cls: Type[VectorKernel],
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        n = network.n
        budget = network.bit_budget
        records = [(v, contexts[v], programs[v].receive) for v in range(n)]

        for v, ctx, _ in records:
            ctx.round_number = 0
            programs[v].setup(ctx)

        active = [rec for rec in records if not rec[1]._halted]
        drain: Sequence[tuple] = records
        inboxes: Inboxes = [None] * n

        total_messages = 0
        total_bits = 0
        max_bits = 0
        messages_per_round: List[int] = []
        bits_per_round: List[int] = []

        takeover: Optional[int] = kernel_cls.takeover_round(network, programs)
        pending: Optional[PendingBroadcast] = None
        handover = False
        rounds = 0

        # Scalar prefix: exact FastEngine mechanics until the kernel's
        # takeover round (round 1 for fully-broadcast programs).
        while rounds < max_rounds:
            if takeover is not None and rounds + 1 >= takeover:
                collected = self._collect_handover(
                    drain, kernel_cls.program_class.message_specs, n
                )
                if collected is _NONCONFORMING:
                    takeover = None  # stay scalar for the whole run
                else:
                    pending = collected
                    handover = True
                    break

            touched, sizes = FastEngine._collect_traffic(drain, inboxes)
            round_messages = len(sizes)
            round_bits, max_bits = FastEngine._charge(
                sizes, inboxes, touched, budget, max_bits
            )
            total_bits += round_bits

            if not active:
                for to in touched:
                    inboxes[to] = None
                break

            rounds += 1
            total_messages += round_messages
            messages_per_round.append(round_messages)
            bits_per_round.append(round_bits)

            still_active = []
            keep = still_active.append
            for rec in active:
                v, ctx, recv = rec
                ctx.round_number = rounds
                box = inboxes[v]
                if box is None:
                    recv(ctx, _EMPTY_INBOX)
                else:
                    inboxes[v] = None
                    recv(ctx, box)
                if not ctx._halted:
                    keep(rec)
            for to in touched:
                inboxes[to] = None

            drain = active
            active = still_active
            if not active:
                break
        else:
            raise SimulationLimitError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        kernel: Optional[VectorKernel] = None
        if handover:
            plane = CsrPlane(network)
            kernel = kernel_cls(plane, network, programs, contexts)
            while rounds < max_rounds:
                round_messages, round_bits, wire_max = self._account(
                    plane, pending, budget
                )
                total_bits += round_bits
                if wire_max > max_bits:
                    max_bits = wire_max

                if kernel.live_count == 0:
                    break  # in-flight traffic charged, round not executed

                rounds += 1
                total_messages += round_messages
                messages_per_round.append(round_messages)
                bits_per_round.append(round_bits)

                pending = kernel.step(rounds, pending)
                if kernel.live_count == 0:
                    # Mirrors the scalar engines' bottom-of-loop break: when
                    # a round ends with every node halted, traffic queued
                    # during that round is discarded *uncharged* (the scalar
                    # loops never reach their next top-of-loop collection).
                    break
            else:
                raise SimulationLimitError(
                    f"simulation did not terminate within {max_rounds} rounds"
                )

        outputs = {v: dict(ctx._outputs) for v, ctx in contexts.items()}
        if kernel is not None:
            kernel.write_outputs(outputs)
            all_halted = kernel.live_count == 0
        else:
            all_halted = not active
        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_bits,
            outputs=outputs,
            all_halted=all_halted,
            messages_per_round=messages_per_round,
            bits_per_round=bits_per_round,
        )

    # -- message plane -------------------------------------------------------

    @staticmethod
    def _collect_handover(
        drain: Sequence[tuple],
        specs: Sequence[MessageSpec],
        n: int,
    ):
        """Drain queued outboxes into one :class:`PendingBroadcast`.

        Returns the pending traffic (possibly with an all-false mask), or
        :data:`_NONCONFORMING` when any queued outbox is not a full
        single-message broadcast with a declared tag — partial sends,
        per-neighbor messages and unknown tags all disqualify the round,
        in which case no outbox is touched and scalar execution continues.
        """
        spec_by_tag = {spec.tag: spec for spec in specs}
        senders: List[tuple] = []
        spec: Optional[MessageSpec] = None
        for rec in drain:
            ctx = rec[1]
            out = ctx._outbox
            if not out:
                continue
            if len(out) != ctx.degree:
                return _NONCONFORMING
            messages = iter(out.values())
            first = next(messages)
            for msg in messages:
                if msg is not first and msg != first:
                    return _NONCONFORMING
            if spec is None:
                spec = spec_by_tag.get(first.tag)
                if spec is None or len(first.fields) != spec.arity:
                    return _NONCONFORMING
            elif first.tag != spec.tag or len(first.fields) != spec.arity:
                return _NONCONFORMING
            senders.append((rec[0], ctx, first))

        mask = np.zeros(n, dtype=bool)
        if spec is None:
            spec = specs[0]  # silent handover round: any spec will do
        columns = tuple(
            np.zeros(n, dtype=np.int64) for _ in range(spec.arity)
        )
        bits = np.zeros(n, dtype=np.int64)
        for v, ctx, msg in senders:
            ctx._outbox = {}
            mask[v] = True
            for i, field in enumerate(msg.fields):
                columns[i][v] = field
            bits[v] = msg.bits
        return PendingBroadcast(spec, mask, columns, bits)

    @staticmethod
    def _account(
        plane: CsrPlane,
        pending: PendingTraffic,
        budget: Optional[int],
    ) -> Tuple[int, int, int]:
        """Exact wire totals ``(messages, bits, max_bits)`` for one round.

        A round may carry several independently-tagged parts (broadcast
        and/or targeted); totals are summed across them.  A broadcast puts
        ``degree`` copies of the sender's message on the wire, so its
        counts are degree-weighted sums over the sender mask; a targeted
        part puts exactly one message per masked slot on the wire, so its
        counts are masked sums.  Raises :class:`MessageTooLargeError` for
        the lowest-id over-budget sender, matching the scalar engines'
        ascending scan.
        """
        messages = bits_total = wire_max = 0
        for part in pending_parts(pending):
            if isinstance(part, PendingTargeted):
                m, b, w = VectorEngine._account_targeted(plane, part, budget)
            else:
                m, b, w = VectorEngine._account_broadcast(plane, part, budget)
            messages += m
            bits_total += b
            if w > wire_max:
                wire_max = w
        return messages, bits_total, wire_max

    @staticmethod
    def _account_broadcast(
        plane: CsrPlane,
        pending: PendingBroadcast,
        budget: Optional[int],
    ) -> Tuple[int, int, int]:
        on_wire = pending.mask & (plane.degrees > 0)
        if not on_wire.any():
            return 0, 0, 0
        degrees = plane.degrees[on_wire]
        bits = pending.bits[on_wire]
        wire_max = int(bits.max())
        if budget is not None and wire_max > budget:
            sender = int(np.flatnonzero(on_wire & (pending.bits > budget))[0])
            receiver = int(plane.indices[plane.indptr[sender]])
            raise MessageTooLargeError(
                sender, receiver, int(pending.bits[sender]), budget
            )
        return int(degrees.sum()), int((degrees * bits).sum()), wire_max

    @staticmethod
    def _account_targeted(
        plane: CsrPlane,
        pending: PendingTargeted,
        budget: Optional[int],
    ) -> Tuple[int, int, int]:
        mask = pending.slot_mask
        if not mask.any():
            return 0, 0, 0
        bits = pending.bits[mask]
        wire_max = int(bits.max())
        if budget is not None and wire_max > budget:
            slots = np.flatnonzero(mask & (pending.bits > budget))
            senders = np.asarray(plane.indices)[slots]
            # Slot order is receiver order; the scalar engines scan
            # ascending *senders*, so pick lowest sender, then receiver.
            slot = int(slots[np.lexsort((slots, senders))[0]])
            receiver = (
                int(np.searchsorted(np.asarray(plane.indptr), slot, "right"))
                - 1
            )
            raise MessageTooLargeError(
                int(plane.indices[slot]),
                receiver,
                int(pending.bits[slot]),
                budget,
            )
        return int(mask.sum()), int(bits.sum()), wire_max
