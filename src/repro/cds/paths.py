"""Bounded-congestion connection paths between clusters (Theorem 1.4 proof,
rules 1-3).

Instead of using every ``G_S`` edge between clusters — impossible to
simulate congestion-free in CONGEST — each pair of adjacent clusters is
connected through paths selected so every ``G`` edge carries at most two
paths:

1. for S-nodes of different clusters adjacent in ``G``, the direct edge;
2. every non-S node ``w`` picks one S-neighbor per adjacent cluster
   (``w_1..w_k(w)``) and chains them with the 2-hop paths
   ``(w_i, w, w_{i+1})``;
3. adjacent non-S nodes ``w, w'`` (both with ``k >= 1``) add the 3-hop
   paths ``(w_1, w, w', w'_{k(w')})`` and ``(w'_1, w', w, w_{k(w)})``.

The selected paths keep the cluster graph ``G'_S`` connected (the chains at
rule-2 nodes merge all clusters adjacent to one relay; rule-3 bridges relay
pairs), and path endpoints are always S-nodes so the spanner stage can
realize its edges by adding only the (at most 2) interior relay nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.cds.clustering import ClusterTreeSet
from repro.errors import GraphError


@dataclass
class PathSelection:
    """Cluster-level edges with witness paths and congestion accounting."""

    #: (cluster_a, cluster_b) sorted -> lexicographically smallest witness path
    cluster_edges: Dict[Tuple[int, int], List[int]]
    #: how many selected paths traverse each G edge
    edge_congestion: Dict[Tuple[int, int], int]
    #: paths selected in total (before cluster-level dedup)
    total_paths: int = 0

    @property
    def max_congestion(self) -> int:
        return max(self.edge_congestion.values(), default=0)

    def cluster_graph(self) -> nx.Graph:
        g = nx.Graph()
        for (a, b) in self.cluster_edges:
            g.add_edge(a, b)
        return g


def select_connection_paths(
    graph: nx.Graph,
    s_nodes: Set[int],
    clustering: ClusterTreeSet,
) -> PathSelection:
    """Apply rules 1-3 and collect the resulting cluster edges."""
    cluster_of = clustering.cluster_of_s
    missing = [s for s in s_nodes if s not in cluster_of]
    if missing:
        raise GraphError(f"S-nodes {missing[:5]} missing from the clustering")

    cluster_edges: Dict[Tuple[int, int], List[int]] = {}
    congestion: Dict[Tuple[int, int], int] = {}
    total = 0

    def edge_key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def add_path(path: List[int]) -> None:
        nonlocal total
        a = cluster_of[path[0]]
        b = cluster_of[path[-1]]
        if a == b:
            return
        total += 1
        key = (a, b) if a < b else (b, a)
        oriented = path if cluster_of[path[0]] == key[0] else list(reversed(path))
        if key not in cluster_edges or oriented < cluster_edges[key]:
            cluster_edges[key] = oriented

    # Rule 1: direct S-S edges across clusters.
    for u, v in graph.edges():
        if u in s_nodes and v in s_nodes and cluster_of[u] != cluster_of[v]:
            add_path([u, v] if u < v else [v, u])

    # Rule 2: per-relay chains.  w picks its smallest S-neighbor per
    # adjacent cluster, ordered by cluster id.
    picks: Dict[int, List[int]] = {}
    for w in sorted(graph.nodes()):
        if w in s_nodes:
            continue
        per_cluster: Dict[int, int] = {}
        for u in sorted(graph.neighbors(w)):
            if u in s_nodes:
                per_cluster.setdefault(cluster_of[u], u)
        chosen = [per_cluster[c] for c in sorted(per_cluster)]
        picks[w] = chosen
        for a, b in zip(chosen, chosen[1:]):
            add_path([a, w, b])

    # Rule 3: bridges between adjacent relays.
    for w, wp in graph.edges():
        if w in s_nodes or wp in s_nodes:
            continue
        kw, kwp = picks.get(w, []), picks.get(wp, [])
        if not kw or not kwp:
            continue
        add_path([kw[0], w, wp, kwp[-1]])
        add_path([kwp[0], wp, w, kw[-1]])

    # Congestion is accounted on the deduplicated selection (one witness
    # path per cluster pair) — that is the set of paths the spanner stage
    # actually communicates over; E6 reports the measured maximum.
    for path in cluster_edges.values():
        for u, v in zip(path, path[1:]):
            ek = edge_key(u, v)
            congestion[ek] = congestion.get(ek, 0) + 1

    return PathSelection(
        cluster_edges=cluster_edges,
        edge_congestion=congestion,
        total_paths=total,
    )
