"""Distributed BFS forest construction.

Every root floods a ``(root, dist)`` wave; each node adopts the first wave it
hears (ties broken towards the smallest root id, then the smallest parent id
— a deterministic rule so repeated runs agree).  This is the standard
O(diameter)-round, O(log n)-bit-per-message BFS used throughout the paper for
cluster trees and aggregation.

Outputs per node: ``root``, ``dist``, ``parent`` (``-1`` for roots and
unreached nodes).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import networkx as nx

from repro.congest.engine import EngineSpec
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator


class BFSTreeProgram(NodeProgram):
    """Per-node input: ``True`` if this node is a root, else falsy.

    A node halts once its adopted wave is one round old and it has forwarded
    it; the forest is complete after ``eccentricity + 1`` rounds.
    """

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        self.root: int | None = None
        self.dist: int | None = None
        self.parent: int = -1
        self._announced = False
        self._idle_rounds = 0

    def _adopt(self, root: int, dist: int, parent: int) -> bool:
        better = (
            self.dist is None
            or dist < self.dist
            or (dist == self.dist and (root, parent) < (self.root, self.parent))
        )
        if better:
            self.root, self.dist, self.parent = root, dist, parent
            self._announced = False
        return better

    def setup(self, ctx: Context) -> None:
        if self.input:
            self._adopt(ctx.node, 0, -1)
            self._flush(ctx)

    def _flush(self, ctx: Context) -> None:
        if not self._announced and self.dist is not None:
            ctx.broadcast(Message("bfs", self.root, self.dist))
            self._announced = True
            self._idle_rounds = 0

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        if inbox:
            for sender, msg in sorted(inbox.items()):
                if msg.tag != "bfs":
                    continue
                root, dist = msg.fields
                self._adopt(root, dist + 1, sender)
        self._flush(ctx)
        self._idle_rounds += 1
        # Two quiet rounds after announcing => no improvement can still be in
        # flight from a strictly closer wave (BFS waves advance one hop per
        # round), so the local state is final.
        if self._announced and self._idle_rounds >= 2:
            ctx.output("root", self.root if self.root is not None else -1)
            ctx.output("dist", self.dist if self.dist is not None else -1)
            ctx.output("parent", self.parent)
            ctx.halt()
        elif ctx.round_number > 2 * ctx.n + 2:
            # Unreachable from any root (different component).
            ctx.output("root", -1)
            ctx.output("dist", -1)
            ctx.output("parent", -1)
            ctx.halt()


def run_bfs_forest(
    graph: nx.Graph | None,
    roots: Iterable[int],
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, int], SimulationResult]:
    """Build a BFS forest from ``roots`` on the simulator.

    Returns ``(root_of, dist_of, parent_of, result)`` where unreached nodes
    map to ``-1`` / ``-1`` / ``-1``.  ``graph`` may be ``None`` when
    ``network`` is given (e.g. a shared-memory CSR reconstruction).
    """
    network = network or Network.congest(graph)
    root_set = set(roots)
    sim = Simulator(
        network,
        BFSTreeProgram,
        inputs={v: (v in root_set) for v in range(network.n)},
        engine=engine,
    )
    result = sim.run(max_rounds=4 * network.n + 10)
    return (
        result.output_map("root"),
        result.output_map("dist"),
        result.output_map("parent"),
        result,
    )


# -- experiment-surface registration ------------------------------------------

from repro.api.registry import ProgramSpec, register_program  # noqa: E402


def _drive(network: Network, engine: str) -> SimulationResult:
    return run_bfs_forest(None, roots=[0], network=network, engine=engine)[-1]


def _summary(sim: SimulationResult) -> Dict[str, object]:
    roots = sim.output_map("root")
    return {"reached": sum(1 for r in roots.values() if r != -1)}


register_program(
    ProgramSpec(
        name="bfs",
        description="BFS forest flood from node 0 (O(diameter) rounds)",
        program=BFSTreeProgram,
        drive=_drive,
        summarize=_summary,
        # No batch recipe: BFS has no vector kernel to stack.
    )
)
