"""Lemma 2.1: initial fractional dominating sets with good fractionality.

The provider (LP oracle or the distributed water-filling solver) supplies a
feasible fractional dominating set; the raising step lifts every value below
``lambda = eps / (2 Delta~)`` up to ``lambda``.  Since the optimum is at
least ``n / Delta~``, the lift costs at most an additive ``eps/2 * OPT``,
and the result is ``eps/(2 Delta~)``-fractional — the Part-I contract of
Section 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import networkx as nx

from repro.congest.cost import CostLedger, kmw06_lp_rounds
from repro.domsets.cfds import CFDS
from repro.errors import GraphError, InfeasibleSolutionError
from repro.fractional.distributed import distributed_fractional_mds
from repro.fractional.lp import lp_fractional_mds


def repair_feasibility(graph: nx.Graph, values: Mapping[int, float]) -> Dict[int, float]:
    """Nudge a nearly-feasible FDS to strict feasibility.

    For every node whose inclusive-neighborhood sum falls short of 1, the
    largest-valued neighbor is raised just enough (plus a hair of margin).
    Used to absorb LP-solver tolerance; a clean input passes through
    untouched.
    """
    x = {v: float(values.get(v, 0.0)) for v in graph.nodes()}
    for v in sorted(graph.nodes()):
        members = sorted(set(graph.neighbors(v)) | {v})
        total = sum(x[u] for u in members)
        if total < 1.0:
            best = max(members, key=lambda u: (x[u], -u))
            x[best] = min(1.0, x[best] + (1.0 - total) + 1e-12)
    return x


def raise_fractionality(
    values: Mapping[int, float], lam: float
) -> Dict[int, float]:
    """Raise every value below ``lam`` to ``lam`` (all nodes, including
    zero-valued ones, exactly as in the proof of Lemma 2.1)."""
    if not 0.0 < lam <= 1.0:
        raise InfeasibleSolutionError(f"raising level lambda={lam} outside (0, 1]")
    return {v: max(float(x), lam) for v, x in values.items()}


@dataclass
class InitialFDS:
    """Part-I output: the raised FDS plus provenance and cost."""

    fds: CFDS
    provider: str
    provider_size: float
    raised_size: float
    lam: float
    ledger: CostLedger

    @property
    def inverse_fractionality(self) -> float:
        """``r`` such that the solution is ``1/r``-fractional."""
        return 1.0 / self.fds.fractionality


def kmw06_initial_fds(
    graph: nx.Graph,
    eps: float,
    provider: str = "lp",
    gamma: float | None = None,
) -> InitialFDS:
    """Lemma 2.1: a ``(1+eps)``-approximate, ``eps/(2 Delta~)``-fractional FDS.

    ``provider`` selects the underlying solver: ``"lp"`` (exact oracle,
    rounds charged per [KMW06]) or ``"distributed"`` (water-filling, rounds
    measured).
    """
    if eps <= 0 or eps > 1:
        raise GraphError(f"eps must be in (0, 1], got {eps}")
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("empty graph")
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    ledger = CostLedger()

    if provider == "lp":
        solution = lp_fractional_mds(graph)
        values = solution.values
        provider_size = sum(values.values())
        ledger.charge("kmw06-lp", kmw06_lp_rounds(delta_tilde - 1, eps))
    elif provider == "distributed":
        result = distributed_fractional_mds(graph, gamma=gamma if gamma else min(0.5, eps))
        values = result.values
        provider_size = result.size
        ledger.simulate("water-filling-lp", result.rounds)
    else:
        raise GraphError(f"unknown Part-I provider {provider!r}")

    values = repair_feasibility(graph, values)
    lam = eps / (2.0 * delta_tilde)
    raised = raise_fractionality(values, lam)
    fds = CFDS.fds(graph, raised)
    fds.require_feasible("Part-I fractional dominating set")
    return InitialFDS(
        fds=fds,
        provider=provider,
        provider_size=provider_size,
        raised_size=fds.size,
        lam=lam,
        ledger=ledger,
    )
