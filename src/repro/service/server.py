"""The asyncio JSON-lines server: a thin shell over the in-process facade.

Every connection is one tenant.  The handler parses frames off the
socket, forwards ``submit``/``flush``/``stats`` to the shared
:class:`~repro.service.service.SimulationService`, and pumps each
submission's :class:`~repro.service.service.Ticket` back as ``record``
frames from a per-ticket forwarder task (the ticket's blocking event
queue is bridged into asyncio with ``run_in_executor``, so the event loop
never blocks on the dispatcher thread).  A connection dropping mid-stream
cancels its live tickets — the service skips their deliveries and the
rest of the window is untouched, which is the whole of the
disconnection story (determinism makes abandoned work harmless).

The server binds ``127.0.0.1`` by default and prints one
``repro service listening on HOST:PORT`` line when asked (``announce``),
which is how ``python -m repro serve --port 0`` hands an OS-assigned port
to scripts.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Optional

from repro.errors import ReproError, ServiceError
from repro.service.protocol import (
    cell_from_wire,
    decode_frame,
    encode_frame,
    error_payload,
)
from repro.service.service import ServiceConfig, SimulationService, Ticket

__all__ = ["ServiceServer", "run_server"]

#: Refuse absurd frames instead of buffering them (asyncio readline limit).
_MAX_FRAME_BYTES = 16 * 1024 * 1024


class ServiceServer:
    """One listening socket over one :class:`SimulationService`."""

    def __init__(
        self,
        service: Optional[SimulationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service or SimulationService()
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_ids = itertools.count(1)

    async def start(self) -> "ServiceServer":
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_MAX_FRAME_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client = f"conn-{next(self._conn_ids)}"
        write_lock = asyncio.Lock()
        forwarders: "dict[asyncio.Task, Ticket]" = {}

        async def send(frame: dict) -> None:
            async with write_lock:
                writer.write(encode_frame(frame))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break  # tenant disconnected
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                except ServiceError as exc:
                    await send({"type": "error", "error": error_payload(exc)})
                    continue
                ftype = frame["type"]
                if ftype == "hello":
                    name = frame.get("client")
                    if isinstance(name, str) and name:
                        client = name
                    await send({"type": "hello", "client": client})
                elif ftype == "submit":
                    await self._handle_submit(frame, client, send, forwarders)
                elif ftype == "flush":
                    self.service.flush()
                elif ftype == "stats":
                    await send(
                        {
                            "type": "stats",
                            "id": frame.get("id"),
                            "stats": self.service.stats(),
                        }
                    )
                elif ftype == "bye":
                    break
                else:
                    await send(
                        {
                            "type": "error",
                            "error": {
                                "type": "MalformedFrameError",
                                "message": f"unknown frame type {ftype!r}",
                            },
                        }
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # disconnect mid-frame: same as EOF
        finally:
            # The mid-window disconnect path: cancel live tickets so the
            # service skips their deliveries, then reap the forwarders.
            for task, ticket in forwarders.items():
                ticket.cancel()
                task.cancel()
            if forwarders:
                await asyncio.gather(*forwarders, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer gone
                pass

    async def _handle_submit(
        self, frame: dict, client: str, send, forwarders: dict
    ) -> None:
        request_id = frame.get("id")
        try:
            raw_cells = frame.get("cells")
            if not isinstance(raw_cells, list):
                raise ServiceError("submit frame needs a 'cells' list")
            cells = [cell_from_wire(c) for c in raw_cells]
            certify = frame.get("certify")
            ticket = self.service.submit(
                client,
                cells,
                use_cache=bool(frame.get("use_cache", True)),
                certify=str(certify) if certify is not None else None,
            )
        except (ReproError, ValueError) as exc:
            await send(
                {"type": "error", "id": request_id, "error": error_payload(exc)}
            )
            return
        await send({"type": "accepted", "id": request_id, "cells": len(cells)})
        task = asyncio.ensure_future(self._forward(ticket, request_id, send))
        forwarders[task] = ticket
        task.add_done_callback(lambda t: forwarders.pop(t, None))

    async def _forward(self, ticket: Ticket, request_id, send) -> None:
        """Pump one ticket's served records onto the wire as they arrive."""
        loop = asyncio.get_running_loop()
        while True:
            served = await loop.run_in_executor(None, ticket.next_event)
            if served is None:
                await send({"type": "done", "id": request_id})
                return
            await send(
                {
                    "type": "record",
                    "id": request_id,
                    "index": served.index,
                    "record": served.record.to_dict(),
                    "meta": served.meta,
                }
            )


async def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServiceConfig] = None,
    announce: bool = True,
) -> None:
    """Start a server and serve until cancelled (the ``repro serve`` body)."""
    server = ServiceServer(SimulationService(config), host=host, port=port)
    await server.start()
    if announce:
        print(f"repro service listening on {server.host}:{server.port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        raise
    finally:
        await server.stop()
