"""Routing backbone via connected dominating sets (Theorem 1.4).

In ad-hoc networks a CDS is a *virtual backbone*: every node is adjacent
to the backbone, and the backbone is connected, so any two nodes can route
via backbone-only paths.  This script builds the Theorem 1.4 backbone,
verifies it, and measures the routing stretch (backbone-path length vs
shortest path) over sampled node pairs.

Usage:  python examples/cds_backbone.py [n] [seed]
"""

from __future__ import annotations

import random
import statistics
import sys

import networkx as nx

from repro import approx_cds
from repro.analysis.verify import require_connected_dominating_set
from repro.graphs import geometric_graph


def backbone_route_length(graph: nx.Graph, backbone: set, s: int, t: int) -> int:
    """Length of the route s -> backbone -> t (entering at a neighbor)."""
    if s in backbone and t in backbone:
        inner = nx.shortest_path_length(graph.subgraph(backbone), s, t)
        return inner
    sub = graph.subgraph(backbone)
    s_gates = [s] if s in backbone else [u for u in graph.neighbors(s) if u in backbone]
    t_gates = [t] if t in backbone else [u for u in graph.neighbors(t) if u in backbone]
    best = None
    for gs in s_gates:
        lengths = nx.single_source_shortest_path_length(sub, gs)
        for gt in t_gates:
            if gt in lengths:
                hops = lengths[gt] + (0 if s in backbone else 1) + (0 if t in backbone else 1)
                if best is None or hops < best:
                    best = hops
    assert best is not None, "backbone disconnected?"
    return best


def main(n: int = 120, seed: int = 3) -> None:
    graph = geometric_graph(n, seed=seed)
    result = approx_cds(graph, eps=0.5)
    backbone = require_connected_dominating_set(graph, result.cds, "backbone")
    print(
        f"network: n={n}, m={graph.number_of_edges()}  "
        f"backbone: {len(backbone)} nodes "
        f"(|S|={len(result.dominating_set)}, route={result.route})"
    )
    for key in sorted(result.stats):
        print(f"  {key:<24s} {result.stats[key]:g}")

    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    stretches = []
    for _ in range(60):
        s, t = rng.sample(nodes, 2)
        shortest = nx.shortest_path_length(graph, s, t)
        if shortest == 0:
            continue
        via = backbone_route_length(graph, backbone, s, t)
        stretches.append(via / shortest)
    print(
        f"\nrouting stretch over {len(stretches)} pairs: "
        f"mean={statistics.mean(stretches):.3f} "
        f"p95={sorted(stretches)[int(0.95 * len(stretches)) - 1]:.3f} "
        f"max={max(stretches):.3f}"
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
