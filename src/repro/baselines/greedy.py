"""Sequential greedy dominating set ([Joh74]).

Repeatedly pick the node covering the most still-uncovered nodes (inclusive
neighborhoods); ties break towards smaller IDs so runs are deterministic.
Guarantee: ``H(Delta + 1) <= 1 + ln(Delta + 1)`` times optimal — the
yardstick the paper's deterministic distributed algorithms are measured
against.
"""

from __future__ import annotations

import heapq
from typing import List, Set, Tuple

import networkx as nx

from repro.analysis.verify import require_dominating_set
from repro.graphs.normalize import require_normalized


def greedy_mds(graph: nx.Graph) -> Set[int]:
    """Greedy minimum dominating set (lazy-heap implementation)."""
    require_normalized(graph)
    n = graph.number_of_nodes()
    if n == 0:
        return set()
    covered = [False] * n
    chosen: Set[int] = set()
    # Max-heap over (coverage gain, -id); gains only decrease, so lazy
    # re-evaluation is sound.
    heap: List[Tuple[int, int]] = [
        (-(graph.degree(v) + 1), v) for v in graph.nodes()
    ]
    heapq.heapify(heap)
    remaining = n

    def gain(v: int) -> int:
        g = 0 if covered[v] else 1
        for u in graph.neighbors(v):
            if not covered[u]:
                g += 1
        return g

    while remaining > 0:
        neg_gain, v = heapq.heappop(heap)
        current = gain(v)
        if current != -neg_gain:
            heapq.heappush(heap, (-current, v))
            continue
        if current == 0:  # pragma: no cover - defensive
            break
        chosen.add(v)
        if not covered[v]:
            covered[v] = True
            remaining -= 1
        for u in graph.neighbors(v):
            if not covered[u]:
                covered[u] = True
                remaining -= 1
    return require_dominating_set(graph, chosen, "greedy")


def greedy_set_cover_order(graph: nx.Graph) -> List[int]:
    """The order in which greedy picks nodes (for ablation experiments)."""
    require_normalized(graph)
    covered: Set[int] = set()
    order: List[int] = []
    nodes = set(graph.nodes())
    while covered != nodes:
        best, best_gain = None, -1
        for v in sorted(nodes):
            inclusive = set(graph.neighbors(v)) | {v}
            g = len(inclusive - covered)
            if g > best_gain:
                best, best_gain = v, g
        assert best is not None
        order.append(best)
        covered |= set(graph.neighbors(best)) | {best}
    return order
