"""Dominating-set data structures.

:class:`~repro.domsets.cfds.CFDS` implements Definition 2.1 (constrained
fractional dominating sets) directly on a graph.  :class:`~repro.domsets.
covering.CoveringInstance` is the value-node / constraint-node view used by
Section 3.3: the bipartite representation ``B_G``, its pruned and split
variants (Lemmas 3.13, 3.14), and general set-cover instances all share it,
so the rounding and derandomization machinery is written once.
"""

from repro.domsets.cfds import CFDS, fractionality_of
from repro.domsets.covering import (
    Constraint,
    CoveringInstance,
    ValueVar,
)

__all__ = [
    "CFDS",
    "fractionality_of",
    "Constraint",
    "CoveringInstance",
    "ValueVar",
]
