"""E9 — Definition 3.2 substrate: network decomposition quality.

Measures the carved decomposition's ``(d, c)`` parameters against the
``O(log n)`` yardstick across the suite and an ``n``-sweep, and validates
every Definition 3.1/3.2 invariant (partition, connectivity, tree depth,
2-hop separation of same-color clusters).
"""

from __future__ import annotations

import math

from repro.decomposition.ball_carving import carve_decomposition
from repro.decomposition.cluster_graph import validate_decomposition
from repro.errors import DecompositionError
from repro.experiments.harness import ExperimentReport, standard_suite
from repro.graphs.generators import gnp_graph

COLUMNS = [
    "graph", "n", "clusters", "colors", "max_depth", "log2_n",
    "depth/log", "valid",
]


def run(fast: bool = True) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E9",
        claim="Ball-carving 2-hop decomposition: diameter/colors vs log n",
        columns=COLUMNS,
    )
    instances = list(standard_suite(fast))
    for inst in instances:
        _measure(report, inst.name, inst.graph)
    # n-sweep on one family (series view).
    sweep_sizes = (40, 80, 160) if fast else (60, 120, 240, 480)
    for n in sweep_sizes:
        _measure(report, f"sweep-gnp-{n}", gnp_graph(n, min(0.5, 4.0 / n), seed=3))
    return report


def _measure(report: ExperimentReport, name: str, graph) -> None:
    dec = carve_decomposition(graph, separation_k=2)
    try:
        validate_decomposition(dec)
        valid = True
    except DecompositionError:
        valid = False
    n = graph.number_of_nodes()
    log_n = max(1.0, math.log2(n))
    report.add_row(
        graph=name,
        n=n,
        clusters=dec.num_clusters,
        colors=dec.num_colors,
        max_depth=dec.max_depth,
        log2_n=round(log_n, 1),
        **{"depth/log": round(dec.max_depth / log_n, 2)},
        valid=valid,
    )
    report.check("invariants", valid)
    report.check("depth_log_bounded", dec.max_depth <= log_n + 1)
