"""Network decompositions (Definitions 3.1 and 3.2).

The [GK18] CONGEST construction is substituted by deterministic sequential
ball carving with a doubling radius rule plus greedy conflict coloring; the
output satisfies the same interface and invariants Lemma 3.4 consumes
(partition into connected clusters with rooted low-diameter spanning trees,
same-color clusters pairwise ``k``-separated), and the CONGEST round cost of
the original construction is charged via
:func:`repro.congest.cost.gk18_decomposition_rounds` (DESIGN.md Section 3).
"""

from repro.decomposition.cluster_graph import (
    Cluster,
    NetworkDecomposition,
    validate_decomposition,
)
from repro.decomposition.ball_carving import carve_decomposition

__all__ = [
    "Cluster",
    "NetworkDecomposition",
    "validate_decomposition",
    "carve_decomposition",
]
