"""Network abstraction over a ``networkx`` graph.

Nodes are identified by integers ``0..n-1`` (see
:func:`repro.graphs.normalize_graph`).  The network exposes adjacency and the
CONGEST bit budget; it does not expose any global structure to node programs,
which only ever see their own id, their neighbor list (port numbering) and
``n`` (the standard assumption that nodes know the network size, used by the
paper for transmittable values).
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.errors import GraphError
from repro.util.mathx import ceil_log2


def congest_bit_budget(n: int, factor: int = 16, base: int = 96) -> int:
    """Default CONGEST message budget in bits for an ``n``-node network.

    ``O(log n)`` with explicit constants: ``factor * ceil(log2 n) + base``.
    The base term covers headers and framing; the factor is generous enough
    for a constant number of identifiers plus one transmittable value, which
    is exactly what the paper's algorithms send.
    """
    return factor * max(1, ceil_log2(max(2, n))) + base


class Network:
    """A static network on which node programs execute.

    Parameters
    ----------
    graph:
        Undirected simple graph with nodes labelled ``0..n-1``.
    bit_budget:
        Maximum message size in bits (``None`` = LOCAL model, unbounded).
    """

    def __init__(self, graph: nx.Graph, bit_budget: int | None = None):
        n = graph.number_of_nodes()
        if n == 0:
            raise GraphError("network requires a non-empty graph")
        if set(graph.nodes()) != set(range(n)):
            raise GraphError(
                "network nodes must be labelled 0..n-1; "
                "use repro.graphs.normalize_graph first"
            )
        self.graph = graph
        self.n = n
        self.bit_budget = bit_budget
        self._neighbors: Dict[int, Tuple[int, ...]] = {
            v: tuple(sorted(graph.neighbors(v))) for v in range(n)
        }

    @classmethod
    def congest(cls, graph: nx.Graph, factor: int = 16, base: int = 96) -> "Network":
        """Network with the default CONGEST bit budget for its size."""
        return cls(graph, bit_budget=congest_bit_budget(graph.number_of_nodes(), factor, base))

    @classmethod
    def local(cls, graph: nx.Graph) -> "Network":
        """LOCAL-model network (unbounded messages)."""
        return cls(graph, bit_budget=None)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbor tuple of ``v`` (the port numbering)."""
        return self._neighbors[v]

    def degree(self, v: int) -> int:
        return len(self._neighbors[v])

    @property
    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._neighbors.values()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "LOCAL" if self.bit_budget is None else f"CONGEST({self.bit_budget}b)"
        return f"Network(n={self.n}, {mode})"
