"""Baselines the paper compares against (or that its guarantees are stated
relative to): sequential greedy, exact optima for small instances, LP
relaxation (via :mod:`repro.fractional.lp`), and LP-plus-independent-
randomized-rounding in the style of the classic randomized algorithms.
"""

from repro.baselines.greedy import greedy_mds, greedy_set_cover_order
from repro.baselines.exact import exact_cds, exact_mds
from repro.baselines.randomized_lp import randomized_lp_rounding_mds

__all__ = [
    "greedy_mds",
    "greedy_set_cover_order",
    "exact_mds",
    "exact_cds",
    "randomized_lp_rounding_mds",
]
