"""Docs suite invariants: links resolve, the catalog stays in sync.

The markdown link check also runs as a CI docs-job gate
(``scripts/check_docs_links.py``); running it in tier-1 means a broken
link fails locally before it fails in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(ROOT / "scripts"))

from check_docs_links import check, doc_files, github_slug  # noqa: E402


def test_docs_suite_exists():
    for name in (
        "api.md", "architecture.md", "experiments.md", "engines.md",
        "benchmarks.md",
    ):
        assert (ROOT / "docs" / name).is_file(), f"docs/{name} missing"


def test_readme_links_docs_suite():
    readme = (ROOT / "README.md").read_text()
    for name in (
        "docs/api.md",
        "docs/architecture.md",
        "docs/engines.md",
        "docs/experiments.md",
        "docs/benchmarks.md",
    ):
        assert name in readme, f"README does not link {name}"


def test_no_broken_intra_repo_links():
    broken = check(ROOT)
    assert not broken, "broken markdown links:\n" + "\n".join(broken)


def test_link_checker_sees_the_docs():
    names = {p.name for p in doc_files(ROOT)}
    assert {
        "README.md", "api.md", "architecture.md", "experiments.md",
        "engines.md", "benchmarks.md",
    } <= names


def test_slugging_matches_github_conventions():
    assert github_slug("Life of a grid cell") == "life-of-a-grid-cell"
    assert (
        github_slug("Batched multi-instance execution (the `batch` strategy)")
        == "batched-multi-instance-execution-the-batch-strategy"
    )


def test_experiment_catalog_covers_all_modules():
    """Every experiment module appears in docs/experiments.md."""
    catalog = (ROOT / "docs" / "experiments.md").read_text()
    modules = sorted(
        p.stem
        for p in (ROOT / "src" / "repro" / "experiments").glob("e*.py")
    )
    assert len(modules) == 12
    for module in modules:
        assert module in catalog, f"{module} missing from docs/experiments.md"


def test_engines_doc_covers_batched_mode():
    engines = (ROOT / "docs" / "engines.md").read_text()
    for needle in (
        "Choosing an engine",
        "Stacking eligibility",
        "lemma310",
        "stackable",
        "strategy=\"batch\"",
        "ragged",
        "local_n_of",
        "node_offsets",
        "When batching helps",
    ):
        assert needle in engines, f"docs/engines.md lost section: {needle!r}"


def test_benchmarks_doc_catalogs_every_artifact():
    """docs/benchmarks.md covers each BENCH_*.json the repo produces."""
    catalog = (ROOT / "docs" / "benchmarks.md").read_text()
    import re
    import subprocess

    producers = (ROOT / "scripts" / "run_experiments.py").read_text()
    produced = set(re.findall(r"BENCH_\w+\.json", producers))
    assert {"BENCH_engines.json", "BENCH_batched.json", "BENCH_ragged.json"} <= produced
    for artifact in sorted(produced):
        assert artifact in catalog, f"{artifact} missing from docs/benchmarks.md"
    # Committed reference artifacts are cataloged too.
    tracked = subprocess.run(
        ["git", "ls-files", "BENCH_*.json"],
        cwd=ROOT, capture_output=True, text=True, check=False,
    ).stdout.split()
    for artifact in tracked:
        assert artifact in catalog, f"committed {artifact} not cataloged"


def test_no_tracked_pycache(tmp_path):
    """PR 3 removed committed bytecode; .gitignore must keep it out."""
    gitignore = (ROOT / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    import subprocess

    tracked = subprocess.run(
        ["git", "ls-files", "*.pyc"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert tracked.stdout.strip() == "", "compiled bytecode is tracked again"


def test_api_doc_covers_the_surface():
    """docs/api.md documents the spec fields, lifecycle and streaming."""
    api_doc = (ROOT / "docs" / "api.md").read_text()
    for needle in (
        "ProgramSpec",
        "Builder lifecycle",
        "Streaming semantics",
        "Deprecation policy",
        "batch_factory",
        "stream()",
    ):
        assert needle in api_doc, f"docs/api.md lost section: {needle!r}"
