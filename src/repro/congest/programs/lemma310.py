"""Distributed execution of the Lemma 3.10 derandomization on the simulator.

This node program runs the color-class conditional-expectation loop as
actual CONGEST message passing on the graph itself (the ``B = B_G`` case
where every node hosts one value variable and one constraint over its
inclusive neighborhood):

* round 0 — every node broadcasts its ``(x, p)`` (transmittable numerators),
  so each node can instantiate the estimator for its own constraint;
* per color class ``i`` (3 rounds):
  announce — participating nodes of color ``i`` declare they are deciding;
  alphas — every neighbor ``u`` of a decider ``v`` sends
  ``(alpha_{u,0}, alpha_{u,1})``, its expected final value conditioned on
  ``v``'s coin (distance-2 coloring guarantees at most one deciding
  neighbor);
  decide — ``v`` picks the smaller sum, fixes its coin, and broadcasts the
  decision so neighbors update their estimator state;
* finally two rounds execute the rounding phases (value exchange,
  constraint check).

The per-node math reuses :class:`repro.derand.estimators.ConstraintEstimator`
verbatim, so the distributed run provably mirrors the centralized engine up
to the paper's alpha quantization; tests compare the two end to end.
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

from repro.congest.engine import (
    CsrPlane,
    EngineSpec,
    MessageSpec,
    PendingBroadcast,
    PendingTargeted,
    VectorKernel,
    pending_parts,
    register_kernel,
)
from repro.congest.message import MESSAGE_HEADER_BITS, Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator
from repro.derand.estimators import ConstraintEstimator, EstimatorConfig
from repro.errors import CongestError
from repro.util.transmittable import TransmittableGrid


class Lemma310Program(NodeProgram):
    """Input per node: dict with keys ``x_num``, ``p_num``, ``c_num``,
    ``color`` (-1 = not participating), ``num_colors``, ``iota``, ``mode``.

    Output per node: ``value`` (final grid numerator after phase two) and,
    for participants, ``coin`` (0/1).
    """

    #: The broadcast-shaped phases (value exchange, coin announcements and
    #: the execution rounds).  The color-class rounds additionally use
    #: ``announce`` broadcasts and targeted ``alpha`` sends; those ride on
    #: kernel-internal specs (they are never handover traffic, so they are
    #: not listed here).  For the canonical uniform workload the vector
    #: kernel runs the *whole* protocol in-plane from round 1; anything
    #: else runs the color-class rounds under scalar FastEngine semantics
    #: with takeover at the execution phase (see
    #: :class:`Lemma310ExecutionKernel`).
    message_specs = (
        MessageSpec("xp", "x_num", "p_num"),
        MessageSpec("fixed", "coin"),
        MessageSpec("exec", "value"),
    )

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        spec = dict(input_value)  # type: ignore[arg-type]
        self.iota: int = spec["iota"]
        self.scale: int = 1 << self.iota
        self.x_num: int = spec["x_num"]
        self.p_num: int = spec["p_num"]
        self.c_num: int = spec["c_num"]
        self.color: int = spec["color"]
        self.num_colors: int = spec["num_colors"]
        self.mode: str = spec["mode"]
        #: neighbor id -> (x_num, p_num); filled in round 1
        self.nbr: Dict[int, Tuple[int, int]] = {}
        self.estimator: ConstraintEstimator | None = None
        self.coin: int | None = None
        self._final_x: int | None = None

    # -- local math ---------------------------------------------------------

    def _f(self, num: int) -> float:
        return num / self.scale

    def _participates(self, x_num: int, p_num: int) -> bool:
        return 0 < x_num and 0 < p_num < self.scale

    def _build_estimator(self) -> None:
        deterministic = 0.0
        free: Dict[int, Tuple[float, float]] = {}
        entries = dict(self.nbr)
        entries[-1] = (self.x_num, self.p_num)  # own variable, id -1 locally
        for node_id, (x_num, p_num) in entries.items():
            if x_num <= 0:
                continue
            if self._participates(x_num, p_num):
                free[node_id] = (self._f(x_num) / self._f(p_num), self._f(p_num))
            else:
                deterministic += self._f(x_num)
        self.estimator = ConstraintEstimator(
            cid=0,
            c=self._f(self.c_num),
            deterministic_sum=deterministic,
            free_coins=free,
            config=EstimatorConfig(mode=self.mode),
        )

    def _own_success_value(self) -> float:
        return self._f(self.x_num) / self._f(self.p_num)

    def _alpha_pair(self, decider: int) -> Tuple[float, float]:
        """(alpha_{u,0}, alpha_{u,1}): this node's expected final value given
        the decider's coin outcome."""
        assert self.estimator is not None
        key = -1 if decider == -2 else decider
        # Expected own phase-one value.
        if self.coin is not None:
            ex = self._own_success_value() if self.coin else 0.0
            ex0 = ex1 = ex
        elif self._participates(self.x_num, self.p_num):
            ex0 = ex1 = self._f(self.x_num)  # p * (x/p)
        else:
            ex0 = ex1 = self._f(self.x_num)
        if key == -1:  # the decider is this node itself
            ex0, ex1 = 0.0, self._own_success_value()
        phi0 = self.estimator.phi_if(key, False)
        phi1 = self.estimator.phi_if(key, True)
        return ex0 + phi0, ex1 + phi1

    # -- protocol ------------------------------------------------------------

    def setup(self, ctx: Context) -> None:
        ctx.broadcast(Message("xp", self.x_num, self.p_num))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        round_no = ctx.round_number
        if round_no == 1:
            for sender, msg in inbox.items():
                if msg.tag != "xp":
                    raise CongestError(f"unexpected {msg.tag} in exchange round")
                self.nbr[sender] = (msg.fields[0], msg.fields[1])
            self._build_estimator()
            self._maybe_announce(ctx, class_index=0)
            return

        # Rounds are grouped in threes per color class, offset by the
        # exchange round: class i occupies rounds 2+3i .. 4+3i.
        class_index = (round_no - 2) // 3
        step = (round_no - 2) % 3

        if class_index >= self.num_colors:
            self._execute_phases(ctx, inbox, round_no)
            return

        if step == 0:
            # "announce" messages arrive; neighbors of a decider quote alphas.
            deciders = [s for s, m in inbox.items() if m.tag == "announce"]
            if len(deciders) > 1:
                raise CongestError(
                    f"node {ctx.node} saw {len(deciders)} simultaneous "
                    "deciders; the coloring is not distance-2"
                )
            if deciders:
                v = deciders[0]
                a0, a1 = self._alpha_pair(v)
                ctx.send(
                    v,
                    Message(
                        "alpha",
                        min(self.scale * 4, round(a0 * self.scale)),
                        min(self.scale * 4, round(a1 * self.scale)),
                    ),
                )
        elif step == 1:
            # Deciders collect alphas and decide.
            if self.color == class_index and self.coin is None and \
                    self._participates(self.x_num, self.p_num):
                total0 = total1 = 0
                for msg in inbox.values():
                    if msg.tag == "alpha":
                        total0 += msg.fields[0]
                        total1 += msg.fields[1]
                own0, own1 = self._alpha_pair(-2)
                total0 += round(own0 * self.scale)
                total1 += round(own1 * self.scale)
                self.coin = 1 if total1 < total0 else 0
                ctx.broadcast(Message("fixed", self.coin))
                assert self.estimator is not None
                self.estimator.fix(-1, bool(self.coin))
        else:
            # Neighbors fold the decision into their estimators; the next
            # class announces.
            for sender, msg in inbox.items():
                if msg.tag == "fixed":
                    assert self.estimator is not None
                    if self.estimator.involves(sender):
                        self.estimator.fix(sender, bool(msg.fields[0]))
            self._maybe_announce(ctx, class_index + 1)

    def _maybe_announce(self, ctx: Context, class_index: int) -> None:
        if class_index >= self.num_colors:
            # Move straight to execution: broadcast the phase-one value.
            self._broadcast_final_x(ctx)
            return
        if (
            self.color == class_index
            and self.coin is None
            and self._participates(self.x_num, self.p_num)
        ):
            ctx.broadcast(Message("announce"))

    def _phase_one_value_num(self) -> int:
        if self.x_num <= 0:
            return 0
        if not self._participates(self.x_num, self.p_num):
            return self.x_num
        if self.coin is None:
            raise CongestError("participating node reached execution undecided")
        if not self.coin:
            return 0
        return min(self.scale, round(self._own_success_value() * self.scale))

    def _broadcast_final_x(self, ctx: Context) -> None:
        if self._final_x is None:
            self._final_x = self._phase_one_value_num()
            ctx.broadcast(Message("exec", self._final_x))

    def _execute_phases(self, ctx: Context, inbox: Dict[int, Message], round_no: int) -> None:
        self._broadcast_final_x(ctx)
        exec_msgs = {s: m for s, m in inbox.items() if m.tag == "exec"}
        if len(exec_msgs) == ctx.degree:
            covered = (self._final_x or 0) + sum(
                m.fields[0] for m in exec_msgs.values()
            )
            final = self.scale if covered < self.c_num else (self._final_x or 0)
            ctx.output("value", final)
            if self.coin is not None:
                ctx.output("coin", self.coin)
            ctx.halt()


#: Kernel-internal wire specs for the color-class rounds.  ``announce``
#: is a field-less broadcast (header bits only); ``alpha`` is a targeted
#: two-field quote.  They never appear in handover traffic, so they are
#: deliberately not part of :attr:`Lemma310Program.message_specs`.
_ANNOUNCE_SPEC = MessageSpec("announce")
_ALPHA_SPEC = MessageSpec("alpha", "alpha0", "alpha1")
_XP_SPEC, _FIXED_SPEC, _EXEC_SPEC = Lemma310Program.message_specs

#: Element-wise ``math.exp`` — NOT ``np.exp``.  The scalar estimator calls
#: libm's ``exp`` per node and its exact float results are part of the
#: observable contract (alpha quotes round to wire integers); numpy's
#: vectorized exp may differ by an ULP, which is enough to flip a
#: rounded quote.  ``frompyfunc`` applies the very same libm call
#: element-wise; it only ever runs on the few masked slots of a class
#: round, so the python-level dispatch cost is noise.
_VEC_EXP = np.frompyfunc(math.exp, 1, 1)


def _exp_exact(values: np.ndarray) -> np.ndarray:
    return _VEC_EXP(values).astype(np.float64)


@register_kernel(Lemma310Program)
class Lemma310ExecutionKernel(VectorKernel):
    """Vectorized Lemma 3.10 loop with a two-speed takeover.

    For the **canonical uniform workload** — every node participating with
    ``x = p`` on a shared grid, ``c = 1``, mode ``auto`` and a proper
    coloring — the kernel takes over at **round 1** and runs the
    color-class conditional-expectation rounds themselves inside the
    plane: announce broadcasts, targeted alpha quotes
    (:class:`PendingTargeted`), decide/fix, and estimator folds, all as
    flat array updates.  Under these inputs every coin weight is exactly
    ``1.0`` and the estimator resolves to exact-product mode, so its float
    operation *sequence* collapses to IEEE-identical array arithmetic:
    the log-product starts as a left-fold of equal ``log1p(-p)`` terms
    (replayed via a partial-sum table), updates are single subtractions,
    and ``phi`` bounds call libm's ``exp`` per element (see
    :data:`_VEC_EXP`).  Results stay bit-for-bit equal to the scalar
    engines.

    Anything non-canonical keeps the original split: the engine runs the
    color-class rounds scalar and the kernel takes over at round
    ``2 + 3 * num_colors``, the first execution round, where every node
    has queued its ``exec`` broadcast of the phase-one value.

    Stacked runs exploit the per-instance takeover machinery
    (:mod:`repro.congest.engine.batched`) in both directions: canonical
    instances join the plane at round 1 (an all-canonical group runs
    fully lockstep, no scalar prologue at all), while heterogeneous
    instances run their own sparse scalar prologue — via
    :meth:`prologue_oracle`'s statically-derived actor sets — and join at
    their own ``2 + 3 * num_colors`` round via :meth:`absorb_instance`.
    One plane round may then carry differently-tagged traffic from
    instances in different phases (multi-part pendings).
    """

    @classmethod
    def eligible(cls, network, programs) -> bool:
        num_colors = {p.num_colors for p in programs.values()}
        return len(num_colors) == 1

    @staticmethod
    def _vectorizable_inputs(progs, max_degree: int) -> bool:
        """Can the color-class rounds run in-plane for these inputs?

        The gate pins down exactly the regime where the scalar float
        sequence is replayable as array math: every node participates with
        the *same* ``x_num == p_num`` (uniformity makes every coin weight
        exactly ``1.0``, resolves ``mode='auto'`` to exact-product, and —
        critically — makes every free coin contribute the same
        ``log1p(-p)`` term, so the initial log-product is a function of
        degree alone), ``c_num == scale`` (``c == 1.0``, making
        ``satisfied`` an integer count), a proper color in
        ``[0, num_colors)`` on a uniform grid, and degrees small enough
        that the estimator's 512-update refresh never fires (the
        vectorized log-product replays the scalar *subtraction* sequence,
        not the refresh recompute; a node commits at most ``degree + 1``
        coins).
        """
        if not progs:
            return False
        first = progs[0]
        scale = first.scale
        num_colors = first.num_colors
        x_num = first.x_num
        if num_colors < 1 or max_degree + 1 >= 512:
            return False
        for p in progs:
            if (
                p.scale != scale
                or p.num_colors != num_colors
                or p.mode != "auto"
                or p.x_num != x_num
                or p.p_num != x_num
                or not (0 < x_num < scale)
                or p.c_num != scale
                or not (0 <= p.color < num_colors)
            ):
                return False
        return True

    @classmethod
    def takeover_round(cls, network, programs) -> int:
        n = network.n
        progs = [programs[v] for v in range(n)]
        indptr, _indices = network.csr()
        degrees = np.diff(np.asarray(indptr, dtype=np.int64))
        max_degree = int(degrees.max()) if n else 0
        if cls._vectorizable_inputs(progs, max_degree):
            return 1
        return 2 + 3 * programs[0].num_colors

    @classmethod
    def prologue_oracle(cls, network, programs):
        """Static per-round actor sets for the color-class prologue.

        The prologue's actors are fully determined by the inputs: the
        deciders of class ``i`` are the participating nodes of color ``i``
        (their coins are still free when class ``i`` opens — classes fix
        coins in order), so for class rounds ``2+3i`` / ``3+3i`` / ``4+3i``
        the acting nodes are the deciders' neighborhoods, the deciders
        themselves, and the union of the deciders' neighborhoods with the
        next class's deciders.  Every skipped node sees an empty inbox and
        falls through ``receive`` without touching estimator state, so
        sparse execution is observationally identical to the full scan.
        Rounds outside the table (the exchange round, the final exec
        broadcast where everyone acts, and the post-takeover rounds)
        return ``None`` — every active node runs.
        """
        plane = CsrPlane(network)
        n = plane.n
        color = np.fromiter(
            (programs[v].color for v in range(n)), dtype=np.int64, count=n
        )
        participates = np.fromiter(
            (
                programs[v]._participates(
                    programs[v].x_num, programs[v].p_num
                )
                for v in range(n)
            ),
            dtype=bool,
            count=n,
        )
        num_colors = int(programs[0].num_colors) if n else 0
        decider_color = np.where(participates, color, -1)
        slot_class = np.repeat(decider_color, np.asarray(plane.degrees))
        table: Dict[int, np.ndarray] = {}
        for i in range(num_colors):
            deciders = np.flatnonzero(decider_color == i)
            # Distance-2 coloring ⇒ decider neighborhoods of one class are
            # disjoint; ``unique`` both sorts and guards improper inputs.
            heard = np.unique(np.asarray(plane.indices)[slot_class == i])
            table[2 + 3 * i] = heard
            table[3 + 3 * i] = deciders
            if i + 1 < num_colors:
                table[4 + 3 * i] = np.union1d(
                    heard, np.flatnonzero(decider_color == i + 1)
                )
        return table.get

    def __init__(self, plane, network, programs, contexts):
        super().__init__(plane, network, programs, contexts)
        n = plane.n
        self.final_x = np.fromiter(
            (programs[v]._final_x or 0 for v in range(n)),
            dtype=np.int64,
            count=n,
        )
        self.c_num = np.fromiter(
            (programs[v].c_num for v in range(n)), dtype=np.int64, count=n
        )
        self.scale = np.fromiter(
            (programs[v].scale for v in range(n)), dtype=np.int64, count=n
        )
        self.coin = np.fromiter(
            (
                -1 if programs[v].coin is None else programs[v].coin
                for v in range(n)
            ),
            dtype=np.int64,
            count=n,
        )
        self._alloc_protocol_arrays(n)
        # Round-1 takeover: instances whose inputs pass the gate run the
        # color-class rounds in-plane.  Evaluated per instance slice; a
        # failing slice would have reported a later takeover round, so on
        # a lockstep plane every slice passes (and on a solo exec-phase
        # takeover none does).
        offsets = getattr(plane, "node_offsets", None)
        if offsets is None:
            slices = [(0, n)]
        else:
            slices = [
                (int(offsets[i]), int(offsets[i + 1]))
                for i in range(len(offsets) - 1)
            ]
        for lo, hi in slices:
            progs = [programs[v] for v in range(lo, hi)]
            degrees = np.asarray(plane.degrees[lo:hi])
            max_degree = int(degrees.max()) if hi > lo else 0
            if self._vectorizable_inputs(progs, max_degree):
                self._init_protocol_slice(lo, hi, progs)

    def _alloc_protocol_arrays(self, n: int) -> None:
        """Flat state for the in-plane color-class rounds (gate-passing
        slices only; elsewhere the arrays stay at their dead defaults)."""
        self.vectorized = np.zeros(n, dtype=bool)
        self.color = np.full(n, -1, dtype=np.int64)
        self.num_colors = np.zeros(n, dtype=np.int64)
        #: exact per-instance ``log1p(-p)`` coin factor
        self.t = np.zeros(n, dtype=np.float64)
        #: ``f(x_num)`` — the undecided neighbor's expected phase-one value
        self.x_f = np.zeros(n, dtype=np.float64)
        self.scale_f = np.ones(n, dtype=np.float64)
        #: the estimator's ``_log_prod`` over still-free coins
        self.log_prod = np.zeros(n, dtype=np.float64)
        #: integer count of successfully-fixed coins; under the gate the
        #: scalar ``fixed_sum`` is exactly ``1.0 * fixed_success``, so the
        #: ``satisfied`` test is the exact integer comparison ``>= 1``
        self.fixed_success = np.zeros(n, dtype=np.int64)
        self._slot_rows_cache: Optional[np.ndarray] = None

    def _init_protocol_slice(self, lo: int, hi: int, progs) -> None:
        """Load one gate-passing instance slice at its round-1 takeover."""
        count = hi - lo
        first = progs[0]
        color = np.fromiter(
            (p.color for p in progs), dtype=np.int64, count=count
        )
        self._load_protocol_slice(
            lo, hi, color, first.num_colors, first.scale, first.x_num
        )

    def _load_protocol_slice(
        self,
        lo: int,
        hi: int,
        color: np.ndarray,
        num_colors: int,
        scale: int,
        x_num: int,
    ) -> None:
        """Fill one instance slice's in-plane protocol state from raw
        gate-passing values (shared by the program-object boot and
        :meth:`stacked_setup`'s input-dict boot).

        Replays the scalar estimator constructor exactly: each node's
        initial ``_log_prod`` is a *left-fold* of ``degree + 1`` equal
        ``log1p(-p)`` terms, reproduced by indexing a partial-sum table
        built with the same sequential additions (``np.cumsum`` pairwise
        summation would NOT match the scalar fold bit-for-bit).
        """
        count = hi - lo
        p_f = x_num / scale
        t = math.log1p(-p_f)
        degrees = np.asarray(self.plane.degrees[lo:hi])
        max_degree = int(degrees.max()) if count else 0
        partial = [0.0]
        for _ in range(max_degree + 1):
            partial.append(partial[-1] + t)
        table = np.asarray(partial, dtype=np.float64)
        self.vectorized[lo:hi] = True
        self.color[lo:hi] = color
        self.num_colors[lo:hi] = num_colors
        self.t[lo:hi] = t
        self.x_f[lo:hi] = p_f
        self.scale_f[lo:hi] = float(scale)
        self.log_prod[lo:hi] = table[degrees + 1]
        self.fixed_success[lo:hi] = 0

    def _slot_rows(self) -> np.ndarray:
        """Receiver row of every CSR slot (lazy; class rounds only)."""
        if self._slot_rows_cache is None:
            plane = self.plane
            self._slot_rows_cache = np.repeat(
                np.arange(plane.n, dtype=np.int64),
                np.asarray(plane.degrees),
            )
        return self._slot_rows_cache

    @classmethod
    def stacked_blank(cls, plane):
        """All-dead kernel shell; instance slices filled at absorb time."""
        kernel = cls._blank(plane)
        n = plane.n
        kernel.live = np.zeros(n, dtype=bool)
        kernel.final_x = np.zeros(n, dtype=np.int64)
        kernel.c_num = np.zeros(n, dtype=np.int64)
        kernel.scale = np.ones(n, dtype=np.int64)
        kernel.coin = np.full(n, -1, dtype=np.int64)
        kernel._alloc_protocol_arrays(n)
        return kernel

    @classmethod
    def stacked_setup(cls, plane, inputs):
        """Vectorized boot for all-canonical groups; ``None`` otherwise.

        A batched sweep of the canonical uniform workload never needs a
        scalar prologue: every instance passes the round-1 gate, so the
        whole boot — program state, protocol planes, and the setup
        round's ``xp`` broadcast — is synthesized directly from the input
        dicts, skipping O(total nodes) program/context construction and
        scalar ``setup`` calls.  The gate is re-evaluated from the raw
        inputs here; any non-canonical (or incomplete) instance declines
        the *group* by returning ``None``, which routes it through the
        object-level boot where canonical members still join the plane at
        round 1 and the rest run their scalar prologues.
        """
        n = plane.n
        k_count = len(plane.local_ns)
        degrees = np.asarray(plane.degrees)
        kernel = cls.stacked_blank(plane)
        kernel.live[:] = True
        x_col = np.zeros(n, dtype=np.int64)
        p_col = np.zeros(n, dtype=np.int64)
        for k in range(k_count):
            mapping = inputs[k]
            if not mapping:
                return None
            lo = int(plane.node_offsets[k])
            count = int(plane.local_ns[k])
            hi = lo + count
            try:
                specs = [mapping[v] for v in range(count)]
                first = specs[0]
                iota = int(first["iota"])
                num_colors = int(first["num_colors"])
                x_num = int(first["x_num"])
                scale = 1 << iota
                color = np.fromiter(
                    (s["color"] for s in specs), dtype=np.int64, count=count
                )
                canonical = (
                    num_colors >= 1
                    and 0 < x_num < scale
                    and all(
                        s["iota"] == iota
                        and s["num_colors"] == num_colors
                        and s["mode"] == "auto"
                        and s["x_num"] == x_num
                        and s["p_num"] == x_num
                        and s["c_num"] == scale
                        for s in specs
                    )
                )
            except (KeyError, TypeError, ValueError):
                return None
            deg = degrees[lo:hi]
            max_degree = int(deg.max()) if count else 0
            if (
                not canonical
                or max_degree + 1 >= 512
                or not bool(np.all((0 <= color) & (color < num_colors)))
            ):
                return None
            kernel.c_num[lo:hi] = scale
            kernel.scale[lo:hi] = scale
            x_col[lo:hi] = x_num
            p_col[lo:hi] = x_num
            kernel._load_protocol_slice(lo, hi, color, num_colors, scale, x_num)
        # The setup round bit for bit: every connected node broadcasts
        # ``Message("xp", x_num, p_num)`` (a degree-0 broadcast queues no
        # wire traffic, so the scalar handover masks it off too).
        pending = PendingBroadcast(
            _XP_SPEC,
            degrees > 0,
            (x_col, p_col),
            _XP_SPEC.bits_array((x_col, p_col)),
        )
        return kernel, pending

    def absorb_instance(self, lo, hi, programs, contexts):
        """Load one instance's post-prologue state (exactly ``__init__``).

        A gate-passing instance absorbs at round 1 — its programs are
        fresh from ``setup`` (``_final_x`` and ``coin`` still unset, which
        the generic fill below maps to the correct dead defaults) — and
        additionally loads the in-plane protocol state.  Anything else
        absorbs at its execution phase with only the exec-state arrays.
        """
        count = hi - lo
        self.live[lo:hi] = np.fromiter(
            (not contexts[v]._halted for v in range(count)),
            dtype=bool,
            count=count,
        )
        self.final_x[lo:hi] = np.fromiter(
            (programs[v]._final_x or 0 for v in range(count)),
            dtype=np.int64,
            count=count,
        )
        self.c_num[lo:hi] = np.fromiter(
            (programs[v].c_num for v in range(count)),
            dtype=np.int64,
            count=count,
        )
        self.scale[lo:hi] = np.fromiter(
            (programs[v].scale for v in range(count)),
            dtype=np.int64,
            count=count,
        )
        self.coin[lo:hi] = np.fromiter(
            (
                -1 if programs[v].coin is None else programs[v].coin
                for v in range(count)
            ),
            dtype=np.int64,
            count=count,
        )
        progs = [programs[v] for v in range(count)]
        degrees = np.asarray(self.plane.degrees[lo:hi])
        max_degree = int(degrees.max()) if count else 0
        if self._vectorizable_inputs(progs, max_degree):
            self._init_protocol_slice(lo, hi, progs)

    # -- in-plane color-class rounds ------------------------------------------

    def step(self, round_no: int, inbound):
        plane = self.plane
        parts = {
            part.spec.tag: part for part in pending_parts(inbound)
        }
        outbound: list = []
        acting = self.vectorized & self.live
        if acting.any():
            if round_no == 1:
                # Exchange round: estimator state was precomputed at
                # takeover (uniform inputs make the xp payloads known);
                # class 0's deciders announce.
                self._emit_announce(acting, 0, outbound)
            else:
                class_index, phase = divmod(round_no - 2, 3)
                in_class = acting & (self.num_colors > class_index)
                if phase == 0 and in_class.any():
                    self._alpha_round(class_index, acting, outbound)
                elif phase == 1 and in_class.any():
                    self._decide_round(class_index, in_class, parts, outbound)
                elif phase == 2:
                    if in_class.any():
                        self._fold_round(class_index, acting)
                        self._emit_announce(acting, class_index + 1, outbound)
                    # Instances whose last class just closed broadcast the
                    # phase-one value (the scalar ``_maybe_announce`` at
                    # ``class_index == num_colors``).
                    entering = acting & (self.num_colors == class_index + 1)
                    if entering.any():
                        self._emit_exec(entering, outbound)
        self._finish_execution(round_no, parts.get("exec"))
        if not outbound:
            return None
        return outbound[0] if len(outbound) == 1 else tuple(outbound)

    def _emit_announce(self, acting, class_index, outbound) -> None:
        mask = acting & (self.color == class_index)
        if not mask.any():
            return
        bits = np.where(mask, MESSAGE_HEADER_BITS, 0).astype(np.int64)
        outbound.append(PendingBroadcast(_ANNOUNCE_SPEC, mask, (), bits))

    def _alpha_round(self, class_index, acting, outbound) -> None:
        """Deliver announces: every neighbor of a decider quotes alphas.

        The scalar path raises on any node that hears two simultaneous
        announces; decider sets are state-derived here, so the same check
        is a row count over decider-neighbor slots.
        """
        plane = self.plane
        deciders = acting & (self.color == class_index)
        if not deciders.any():
            return
        senders = np.asarray(plane.indices)
        decider_neighbors = plane.row_sum(deciders[senders].astype(np.int64))
        bad = acting & (decider_neighbors > 1)
        if bad.any():
            node = int(np.flatnonzero(bad)[0])
            raise CongestError(
                f"node {int(plane.local_ids[node])} saw "
                f"{int(decider_neighbors[node])} simultaneous "
                "deciders; the coloring is not distance-2"
            )
        # Receiver-side slots of decider rows each carry one alpha quote
        # (sender = the slot's peer).
        slots = np.flatnonzero(deciders[self._slot_rows()])
        if slots.size == 0:
            return
        quoting = senders[slots]
        coin = self.coin[quoting]
        # Expected own phase-one value: f(x) while undecided (p * x/p),
        # else the committed outcome (own_success is exactly 1.0 here).
        expected = np.where(coin < 0, self.x_f[quoting], coin.astype(np.float64))
        phi0 = np.where(
            self.fixed_success[quoting] > 0,
            0.0,
            _exp_exact(
                np.minimum(0.0, self.log_prod[quoting] - self.t[quoting])
            ),
        )
        scale_f = self.scale_f[quoting]
        cap = self.scale[quoting] * 4
        wire0 = np.minimum(cap, np.rint((expected + phi0) * scale_f).astype(np.int64))
        wire1 = np.minimum(cap, np.rint(expected * scale_f).astype(np.int64))
        nnz = plane.nnz
        slot_mask = np.zeros(nnz, dtype=bool)
        slot_mask[slots] = True
        col0 = np.zeros(nnz, dtype=np.int64)
        col1 = np.zeros(nnz, dtype=np.int64)
        col0[slots] = wire0
        col1[slots] = wire1
        bits = np.zeros(nnz, dtype=np.int64)
        bits[slots] = _ALPHA_SPEC.bits_array((wire0, wire1))
        outbound.append(PendingTargeted(_ALPHA_SPEC, slot_mask, (col0, col1), bits))

    def _decide_round(self, class_index, in_class, parts, outbound) -> None:
        """Deciders sum the quoted alphas plus their own pair and commit."""
        plane = self.plane
        deciders_mask = in_class & (self.color == class_index)
        deciders = np.flatnonzero(deciders_mask)
        if deciders.size == 0:
            return
        alpha = parts.get("alpha")
        if alpha is not None:
            masked0 = np.where(alpha.slot_mask, alpha.columns[0], 0)
            masked1 = np.where(alpha.slot_mask, alpha.columns[1], 0)
            sum0 = plane.row_sum(masked0)[deciders]
            sum1 = plane.row_sum(masked1)[deciders]
        else:
            sum0 = sum1 = np.zeros(deciders.size, dtype=np.int64)
        # Own pair: (phi_if(own, fail), own_success + 0.0) — the success
        # branch covers c exactly, so alpha_1 is exactly scale.
        own_phi0 = np.where(
            self.fixed_success[deciders] > 0,
            0.0,
            _exp_exact(
                np.minimum(0.0, self.log_prod[deciders] - self.t[deciders])
            ),
        )
        total0 = sum0 + np.rint(own_phi0 * self.scale_f[deciders]).astype(np.int64)
        total1 = sum1 + self.scale[deciders]
        coin = np.where(total1 < total0, 1, 0).astype(np.int64)
        self.coin[deciders] = coin
        # estimator.fix(-1, coin): own factor leaves the free set.
        self.fixed_success[deciders] += coin
        self.log_prod[deciders] -= self.t[deciders]
        n = plane.n
        column = np.zeros(n, dtype=np.int64)
        column[deciders] = coin
        bits = _FIXED_SPEC.bits_array((column,))
        outbound.append(
            PendingBroadcast(_FIXED_SPEC, deciders_mask, (column,), bits)
        )

    def _fold_round(self, class_index, acting) -> None:
        """Neighbors fold the delivered decisions into estimator state."""
        plane = self.plane
        deciders = acting & (self.color == class_index)
        if not deciders.any():
            return
        senders = np.asarray(plane.indices)
        decided_slot = deciders[senders]
        delta = plane.row_sum(np.where(decided_slot, self.coin[senders], 0))
        folding = plane.row_any(decided_slot) & acting
        self.fixed_success += np.where(folding, delta, 0)
        self.log_prod = np.where(
            folding, self.log_prod - self.t, self.log_prod
        )

    def _emit_exec(self, entering, outbound) -> None:
        """The scalar ``_broadcast_final_x``: commit and announce the
        phase-one value (``own_success`` is exactly 1.0, so a success coin
        contributes exactly ``scale``)."""
        phase_one = np.where(self.coin > 0, self.scale, 0)
        self.final_x = np.where(entering, phase_one, self.final_x)
        column = np.where(entering, self.final_x, 0)
        bits = _EXEC_SPEC.bits_array((column,))
        outbound.append(PendingBroadcast(_EXEC_SPEC, entering, (column,), bits))

    def _finish_execution(self, round_no: int, exec_part) -> None:
        plane = self.plane
        sent = plane.sent_slots(exec_part)
        heard = plane.row_sum(sent)
        received = plane.row_sum(np.where(sent, plane.gather(self.final_x), 0))
        # A node finishes once it heard the phase-one value of its whole
        # neighborhood in one round (all nodes broadcast simultaneously).
        # In-plane instances additionally must have *reached* their
        # execution phase — an isolated node trivially hears its whole
        # (empty) neighborhood every round.
        finishing = self.live & (heard == plane.degrees)
        if round_no >= 2:
            class_index = (round_no - 2) // 3
            in_exec = self.num_colors <= class_index
        else:
            in_exec = np.zeros(plane.n, dtype=bool)
        finishing &= in_exec | ~self.vectorized
        if finishing.any():
            covered = self.final_x + received
            final = np.where(covered < self.c_num, self.scale, self.final_x)
            for v in np.flatnonzero(finishing):
                node = int(v)
                self.output(node, "value", int(final[v]))
                if self.coin[v] >= 0:
                    self.output(node, "coin", int(self.coin[v]))
            self.live &= ~finishing


def run_lemma310_on_graph(
    graph: nx.Graph | None,
    values: Mapping[int, float],
    p: Mapping[int, float],
    colors: Mapping[int, int],
    mode: str = "auto",
    grid: TransmittableGrid | None = None,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, float], Dict[int, int], SimulationResult]:
    """Run the distributed Lemma 3.10 loop for the graph instance ``B_G``.

    ``colors`` must be a distance-2 coloring of the participating nodes
    (0-based).  Returns (final values, coins, simulation metrics).
    ``graph`` may be ``None`` when ``network`` is given (e.g. a
    shared-memory CSR reconstruction).
    """
    network = network or Network.congest(graph)
    n = network.n
    grid = grid or TransmittableGrid.for_n(n)
    num_colors = (max(colors.values()) + 1) if colors else 0
    inputs = {}
    for v in graph.nodes() if graph is not None else range(n):
        inputs[v] = {
            "iota": grid.iota,
            "x_num": grid.to_int(values.get(v, 0.0)),
            "p_num": grid.to_int(p.get(v, 1.0)),
            "c_num": grid.to_int(1.0),
            "color": colors.get(v, -1),
            "num_colors": num_colors,
            "mode": mode,
        }
    sim = Simulator(network, Lemma310Program, inputs=inputs, engine=engine)
    result = sim.run(max_rounds=3 * num_colors + 12)
    final_values = {
        v: grid.from_int(num) for v, num in result.output_map("value").items()
    }
    coins = {v: c for v, c in result.output_map("coin").items()}
    return final_values, coins, result


# -- experiment-surface registration ------------------------------------------

from repro.api.registry import ProgramSpec, register_program  # noqa: E402


def _drive(network: Network, engine: str) -> SimulationResult:
    """Canonical Lemma 3.10 workload: every node a fair coin, ``c = 1``.

    ``x(v) = p(v) = 1/2`` makes every node a participating variable, and a
    distance-2 coloring is derived from the topology itself (via the lazy
    ``network.graph``), so the whole derandomization loop — exchange,
    per-color conditional-expectation rounds, execution phases — runs with
    inputs fully determined by the cell.
    """
    from repro.coloring.distance2 import distance2_coloring

    coloring = distance2_coloring(network.graph)
    n = network.n
    values = {v: 0.5 for v in range(n)}
    p = {v: 0.5 for v in range(n)}
    _vals, _coins, sim = run_lemma310_on_graph(
        None, values, p, coloring.colors, network=network, engine=engine
    )
    return sim


def _summary(sim: SimulationResult) -> Dict[str, object]:
    scale = 1 << TransmittableGrid.for_n(len(sim.outputs)).iota
    values = sim.output_map("value")
    return {
        "joined": sum(1 for num in values.values() if num == scale),
        "decided": len(sim.output_map("coin")),
    }


#: Canonical-workload colorings, memoized per live network.  The batch
#: hooks (`_batch_inputs`, `_batch_num_colors` via `_batch_max_rounds`)
#: all need the same distance-2 coloring of the same topology, and the
#: runner calls them back to back while holding the network — without the
#: memo a stacked group squares its dominant setup cost by coloring every
#: instance twice.  Weak keys keep retired networks collectable.
_COLORING_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _canonical_coloring(network: Network):
    try:
        return _COLORING_MEMO[network]
    except (KeyError, TypeError):
        pass
    from repro.coloring.distance2 import distance2_coloring

    coloring = distance2_coloring(network.graph)
    try:
        _COLORING_MEMO[network] = coloring
    except TypeError:
        pass
    return coloring


def _batch_num_colors(network: Network) -> int:
    """Color count of the canonical workload's distance-2 coloring."""
    coloring = _canonical_coloring(network)
    return (max(coloring.colors.values()) + 1) if coloring.colors else 0


def _batch_inputs(network: Network) -> Dict[int, Dict[str, object]]:
    """Per-node inputs reproducing :func:`_drive` bit for bit."""
    coloring = _canonical_coloring(network)
    n = network.n
    grid = TransmittableGrid.for_n(n)
    half = grid.to_int(0.5)
    c_num = grid.to_int(1.0)
    num_colors = (
        (max(coloring.colors.values()) + 1) if coloring.colors else 0
    )
    return {
        v: {
            "iota": grid.iota,
            "x_num": half,
            "p_num": half,
            "c_num": c_num,
            "color": coloring.colors.get(v, -1),
            "num_colors": num_colors,
            "mode": "auto",
        }
        for v in range(n)
    }


def _batch_max_rounds(network) -> int:
    """:func:`run_lemma310_on_graph`'s ``3 * num_colors + 12`` limit.

    Cost-model proxies (:class:`repro.experiments.scheduler._SizeProxy`)
    carry only ``n``; for those the trivial n-coloring bounds the color
    count, keeping plan estimates finite without building a graph.
    """
    if not hasattr(network, "graph"):
        return 3 * int(network.n) + 12
    return 3 * _batch_num_colors(network) + 12


def _batch_prologue_rounds(network) -> int:
    """Scalar prologue rounds of the canonical batch workload: usually 0.

    The canonical uniform inputs (:func:`_batch_inputs`) clear the
    kernel's round-1 gate on any ordinary topology, so a stacked instance
    runs *no* scalar prologue — the whole color-class protocol executes
    in-plane.  Only degenerate instances whose max degree reaches the
    estimator's refresh threshold fall back to the late takeover at
    ``2 + 3 * num_colors``; the adaptive scheduler charges those prologue
    rounds on top of the plane cost.  Cost-model size proxies
    (:class:`repro.experiments.scheduler._SizeProxy`) carry only ``n``
    and assume the common gate-passing case.
    """
    if not hasattr(network, "graph"):
        return 0
    if getattr(network, "max_degree", 0) + 1 < 512:
        return 0
    return 3 * _batch_num_colors(network) + 1


register_program(
    ProgramSpec(
        name="lemma310",
        description="Lemma 3.10 color-class conditional-expectation loop",
        program=Lemma310Program,
        drive=_drive,
        summarize=_summary,
        # Batch recipe: stacked instances run their color-class prologues
        # scalar (sparse, via the kernel's prologue_oracle) and join the
        # shared plane at their own 2 + 3*num_colors takeover round.
        batch_factory=Lemma310Program,
        batch_inputs=_batch_inputs,
        batch_max_rounds=_batch_max_rounds,
        batch_prologue_rounds=_batch_prologue_rounds,
    )
)
