"""Batch experiment runner: (graph × program × engine × seed) grids.

The simulator executes one cell at a time; scaling to many scenarios is the
runner's job.  A *cell* pins everything needed to reproduce one simulated
execution — graph family, size, seed, node program, engine — so a grid of
cells can be expanded up front (:func:`expand_grid`), executed sequentially
or across ``multiprocessing`` workers (:func:`run_grid`), and aggregated
into one JSON document (:func:`results_payload` / :func:`write_results`).

Design points:

* **Determinism.** Cells carry their own seed; a grid run with ``jobs=1``
  is bit-for-bit reproducible, and worker parallelism cannot reorder the
  output (results are returned in cell order regardless of completion
  order).
* **Structured failures.** A cell that raises — bad family, simulation
  limit, oversized message — produces an ``ok=False`` record with the
  exception type and message instead of tearing down the whole grid;
  malformed grid *axes* (unknown program, engine or strategy names) raise
  structured :class:`~repro.errors.UnknownProgramError` /
  :class:`~repro.errors.UnknownEngineError` /
  :class:`~repro.errors.UnknownStrategyError` at expansion/dispatch time.
* **Generate once, share everywhere.** All cells of one (family, n, seed)
  work item run on the same topology.  Sequentially the Network object is
  reused directly; across process workers the parent generates each graph
  once and ships its CSR arrays through ``multiprocessing.shared_memory``
  (:mod:`repro.experiments.sharedmem`), so workers skip graph generation
  entirely and nothing big travels through the pool queue.
* **Batched seed sweeps.** ``strategy="batch"`` groups vector-engine cells
  by (family, n, program) and executes each group's seeds as **one**
  stacked message plane (:func:`repro.congest.engine.batched.run_stacked`)
  instead of K per-node program instantiations.  Split results are
  bit-for-bit identical to per-cell runs — groups that cannot stack
  (ineligible program, mixed generated sizes, any error) transparently
  fall back to the per-cell path, so the strategy only ever changes
  wall-clock, never records.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.congest.engine import available_engines
from repro.congest.network import Network
from repro.congest.programs import (
    run_bfs_forest,
    run_color_reduction,
    run_distributed_greedy,
)
from repro.congest.programs.color_reduction import ColorReductionProgram
from repro.congest.programs.greedy_mds import DistributedGreedyProgram
from repro.congest.simulator import SimulationResult
from repro.errors import (
    UnknownEngineError,
    UnknownProgramError,
    UnknownStrategyError,
)
from repro.graphs.suite import suite_instance

__all__ = [
    "GridCell",
    "available_programs",
    "available_strategies",
    "batchable_programs",
    "expand_grid",
    "run_cell",
    "run_batched_group",
    "run_grid",
    "summarize_results",
    "results_payload",
    "write_results",
]


@dataclass(frozen=True)
class GridCell:
    """One fully-specified simulated execution."""

    family: str
    n: int
    program: str
    engine: str
    seed: int = 7

    @property
    def key(self) -> str:
        return f"{self.family}-{self.n}/{self.program}/{self.engine}/s{self.seed}"

    @property
    def topology_key(self) -> Tuple[str, int, int]:
        """Cells sharing this key run on the identical generated graph."""
        return (self.family, self.n, self.seed)

    @property
    def group_key(self) -> Tuple[str, int, str, str]:
        """Cells sharing this key differ only by seed (one batch group)."""
        return (self.family, self.n, self.program, self.engine)


def _drive_bfs(network: Network, engine: str) -> SimulationResult:
    return run_bfs_forest(None, roots=[0], network=network, engine=engine)[-1]


def _drive_greedy(network: Network, engine: str) -> SimulationResult:
    return run_distributed_greedy(None, network=network, engine=engine)[-1]


def _drive_color(network: Network, engine: str) -> SimulationResult:
    return run_color_reduction(None, network=network, engine=engine)[-1]


#: Named node-program drivers a cell can select.  Each takes
#: ``(network, engine)`` and returns the :class:`SimulationResult` —
#: network-only signatures so shared-memory reconstructions plug in
#: without a ``networkx`` graph.
_PROGRAMS: Dict[str, Callable[[Network, str], SimulationResult]] = {
    "bfs": _drive_bfs,
    "greedy": _drive_greedy,
    "color-reduction": _drive_color,
}


def _summary_bfs(sim: SimulationResult) -> Dict[str, object]:
    roots = sim.output_map("root")
    return {"reached": sum(1 for r in roots.values() if r != -1)}


def _summary_greedy(sim: SimulationResult) -> Dict[str, object]:
    return {"ds_size": sum(1 for v in sim.output_map("in_ds").values() if v)}


def _summary_color(sim: SimulationResult) -> Dict[str, object]:
    return {"colors": len(set(sim.output_map("color").values()))}


#: Program-specific one-line result summaries, computed from node outputs
#: only — so the per-cell and batched paths produce identical values.
_SUMMARIES: Dict[str, Callable[[SimulationResult], Dict[str, object]]] = {
    "bfs": _summary_bfs,
    "greedy": _summary_greedy,
    "color-reduction": _summary_color,
}


@dataclass(frozen=True)
class _BatchSpec:
    """How to instantiate one instance of a batchable program family."""

    factory: type
    max_rounds: Callable[[Network], int]


#: Programs the ``batch`` strategy can stack (same entry points as the
#: per-cell drivers above — same factory, inputs and round limits).  BFS is
#: absent because it has no vector kernel; the Lemma 3.10 program would be
#: rejected at run time (its kernel is not ``stackable``).
_BATCH: Dict[str, _BatchSpec] = {
    "greedy": _BatchSpec(
        factory=DistributedGreedyProgram,
        max_rounds=lambda net: 8 * net.n + 16,
    ),
    "color-reduction": _BatchSpec(
        factory=ColorReductionProgram,
        max_rounds=lambda net: net.n + 4,
    ),
}

#: Execution strategies :func:`run_grid` accepts.
STRATEGIES = ("cell", "batch")


def available_programs() -> List[str]:
    """Sorted names of the node programs the runner can drive."""
    return sorted(_PROGRAMS)


def available_strategies() -> List[str]:
    """Names of the grid execution strategies."""
    return list(STRATEGIES)


def batchable_programs() -> List[str]:
    """Sorted names of the programs the ``batch`` strategy can stack."""
    return sorted(_BATCH)


def expand_grid(
    families: Sequence[str],
    sizes: Sequence[int],
    programs: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    seed: int = 7,
    seeds: Sequence[int] | None = None,
) -> List[GridCell]:
    """Cartesian expansion of the grid axes into concrete cells.

    ``seeds`` sweeps multiple topologies per (family, size) — the axis the
    ``batch`` strategy stacks; it defaults to the single ``seed``.  Unknown
    program or engine names fail fast with a structured error — one bad
    axis value would otherwise poison every cell it touches.
    """
    programs = list(programs) if programs is not None else available_programs()
    engines = list(engines) if engines is not None else available_engines()
    seed_list = list(seeds) if seeds is not None else [seed]
    for program in programs:
        if program not in _PROGRAMS:
            raise UnknownProgramError(program, available_programs())
    registered = set(available_engines())
    for engine in engines:
        if engine not in registered:
            raise UnknownEngineError(engine, available_engines())
    return [
        GridCell(family=f, n=n, program=p, engine=e, seed=s)
        for f in families
        for n in sizes
        for p in programs
        for e in engines
        for s in seed_list
    ]


def build_network(cell: GridCell) -> Network:
    """Generate the cell's graph and compile it into a CONGEST network."""
    inst = suite_instance(cell.family, cell.n, seed=cell.seed)
    return Network.congest(inst.graph)


def _metrics(cell: GridCell, network: Network, sim: SimulationResult) -> Dict[str, object]:
    """The metrics block of one success record (shared by both strategies)."""
    metrics: Dict[str, object] = {
        "n": network.n,
        "max_degree": network.max_degree,
        "rounds": sim.rounds,
        "total_messages": sim.total_messages,
        "total_bits": sim.total_bits,
        "max_message_bits": sim.max_message_bits,
        "all_halted": sim.all_halted,
    }
    summarize = _SUMMARIES.get(cell.program)
    if summarize is not None:
        metrics.update(summarize(sim))
    return metrics


def run_cell(
    cell: GridCell, network: Optional[Network] = None
) -> Dict[str, object]:
    """Execute one cell; never raises — failures become structured records.

    ``network`` short-circuits graph generation when the caller already
    holds the cell's topology (sequential reuse or a shared-memory
    reconstruction); the timed section covers simulation only either way.
    """
    record: Dict[str, object] = {"cell": asdict(cell), "key": cell.key}
    try:
        if cell.program not in _PROGRAMS:
            raise UnknownProgramError(cell.program, available_programs())
        if network is None:
            network = build_network(cell)
        start = time.perf_counter()
        sim = _PROGRAMS[cell.program](network, cell.engine)
        wall = time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - the grid must survive any cell
        record["ok"] = False
        record["error"] = {"type": type(exc).__name__, "message": str(exc)}
        return record
    record["ok"] = True
    record["wall_s"] = wall
    record["metrics"] = _metrics(cell, network, sim)
    return record


def run_batched_group(
    cells: Sequence[GridCell],
    networks: Optional[Sequence[Optional[Network]]] = None,
) -> List[Dict[str, object]]:
    """Execute one batch group (same family/n/program/engine, many seeds)
    as a single stacked run; fall back to per-cell execution on any error.

    Success records are shaped exactly like :func:`run_cell`'s — identical
    ``metrics`` blocks (the stacked-plane parity guarantee) plus a
    ``batch`` annotation recording the stack width and the group's shared
    wall-clock.  ``wall_s`` is the group wall divided evenly across the
    cells so per-engine wall totals stay meaningful in summaries.
    """
    from repro.congest.engine import run_stacked

    cells = list(cells)
    nets: List[Optional[Network]] = (
        list(networks) if networks is not None else [None] * len(cells)
    )
    try:
        for i, cell in enumerate(cells):
            if nets[i] is None:
                nets[i] = build_network(cell)
        spec = _BATCH[cells[0].program]
        start = time.perf_counter()
        sims = run_stacked(
            nets, spec.factory, max_rounds=spec.max_rounds(nets[0])
        )
        wall = time.perf_counter() - start
    except Exception:  # noqa: BLE001 - stacking is an optimization only
        return [run_cell(cell, network=net) for cell, net in zip(cells, nets)]
    records = []
    share = wall / max(1, len(cells))
    for cell, network, sim in zip(cells, nets, sims):
        records.append(
            {
                "cell": asdict(cell),
                "key": cell.key,
                "ok": True,
                "wall_s": share,
                "batch": {"k": len(cells), "group_wall_s": wall},
                "metrics": _metrics(cell, network, sim),
            }
        )
    return records


def _run_cell_task(task) -> Dict[str, object]:
    """Pool worker: attach the published topology (if any) and run."""
    cell, handle = task
    if handle is None:
        return run_cell(cell)
    from repro.experiments.sharedmem import attach_network

    try:
        network = attach_network(handle)
    except Exception:  # pragma: no cover - attach races are host-specific
        network = None  # fall back to regenerating in the worker
    return run_cell(cell, network=network)


def _run_batch_task(task) -> List[Dict[str, object]]:
    """Pool worker: attach a published stacked topology group and run it."""
    cells, handle = task
    networks: Optional[List[Optional[Network]]] = None
    if handle is not None:
        from repro.experiments.sharedmem import attach_stacked

        try:
            networks = list(attach_stacked(handle))
        except Exception:  # pragma: no cover - attach races are host-specific
            networks = None
    return run_batched_group(cells, networks=networks)


def _batch_plan(
    cells: Sequence[GridCell], batch_size: int
) -> List[Tuple[str, List[int]]]:
    """Partition cell indices into dispatch units for ``strategy="batch"``.

    Returns ``("batch", indices)`` units for stackable groups — vector
    engine, batchable program, ≥ 2 cells sharing a
    :attr:`GridCell.group_key`, chunked to ``batch_size`` (0 = unlimited)
    — and ``("cell", [index])`` units for everything else.  Units are
    emitted in first-occurrence order; record order is restored by index
    afterwards, so the strategy cannot reorder results.
    """
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for i, cell in enumerate(cells):
        batchable = cell.engine == "vector" and cell.program in _BATCH
        key = ("group",) + cell.group_key if batchable else ("solo", i)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    plan: List[Tuple[str, List[int]]] = []
    for key in order:
        indices = groups[key]
        if key[0] == "solo" or len(indices) < 2:
            plan.extend(("cell", [i]) for i in indices)
            continue
        step = batch_size if batch_size > 0 else len(indices)
        for lo in range(0, len(indices), step):
            chunk = indices[lo : lo + step]
            if len(chunk) < 2:
                plan.append(("cell", chunk))
            else:
                plan.append(("batch", chunk))
    return plan


def run_grid(
    cells: Iterable[GridCell],
    jobs: int = 1,
    strategy: str = "cell",
    batch_size: int = 0,
) -> List[Dict[str, object]]:
    """Run every cell, optionally across ``jobs`` worker processes.

    ``strategy="cell"`` executes one simulation per cell;
    ``strategy="batch"`` stacks each group of vector-engine seed-sweep
    cells into one multi-instance run (``batch_size`` caps the stack
    width; 0 means one stack per group).  Results come back in cell order
    under every combination, and each unique (family, n, seed) topology is
    generated exactly once — reused in-process sequentially, published
    through shared memory to workers.
    """
    cells = list(cells)
    if strategy not in STRATEGIES:
        raise UnknownStrategyError(strategy, available_strategies())
    if strategy == "batch":
        return _run_batched(cells, jobs, batch_size)
    return _run_cells(cells, jobs)


def _run_batched(
    cells: List[GridCell], jobs: int, batch_size: int
) -> List[Dict[str, object]]:
    """The ``batch`` strategy: stack seed-sweep groups, per-cell the rest."""
    plan = _batch_plan(cells, batch_size)
    results: List[Optional[Dict[str, object]]] = [None] * len(cells)

    if jobs <= 1 or len(plan) <= 1:
        networks: Dict[tuple, Optional[Network]] = {}

        def net_for(cell: GridCell) -> Optional[Network]:
            key = cell.topology_key
            if key not in networks:
                try:
                    networks[key] = build_network(cell)
                except Exception:  # noqa: BLE001 - recorded per cell later
                    networks[key] = None
            return networks[key]

        for kind, indices in plan:
            if kind == "cell":
                for i in indices:
                    results[i] = run_cell(cells[i], network=net_for(cells[i]))
            else:
                group = [cells[i] for i in indices]
                records = run_batched_group(
                    group, networks=[net_for(c) for c in group]
                )
                for i, rec in zip(indices, records):
                    results[i] = rec
        return results  # type: ignore[return-value]

    import multiprocessing

    from repro.experiments.sharedmem import SharedStackedTopology, SharedTopology

    published: Dict[tuple, Optional[SharedTopology]] = {}
    stacks: List[SharedStackedTopology] = []
    tasks = []
    try:
        for kind, indices in plan:
            if kind == "cell":
                cell = cells[indices[0]]
                key = cell.topology_key
                if key not in published:
                    try:
                        published[key] = SharedTopology.publish(build_network(cell))
                    except Exception:  # noqa: BLE001 - cell records the failure
                        published[key] = None
                topology = published[key]
                tasks.append(
                    ("cell", cell, topology.handle if topology else None)
                )
            else:
                group = [cells[i] for i in indices]
                handle = None
                try:
                    stack = SharedStackedTopology.publish(
                        [build_network(c) for c in group]
                    )
                    stacks.append(stack)
                    handle = stack.handle
                except Exception:  # noqa: BLE001 - workers regenerate
                    handle = None
                tasks.append(("batch", group, handle))
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            unit_results = pool.map(_run_unit_task, tasks)
    finally:
        for topology in published.values():
            if topology is not None:
                topology.unlink()
        for stack in stacks:
            stack.unlink()
    for (kind, indices), records in zip(plan, unit_results):
        for i, rec in zip(indices, records):
            results[i] = rec
    return results  # type: ignore[return-value]


def _run_unit_task(task) -> List[Dict[str, object]]:
    """Pool worker for the batch strategy: one plan unit per task."""
    kind, payload, handle = task
    if kind == "cell":
        return [_run_cell_task((payload, handle))]
    return _run_batch_task((payload, handle))


def _run_cells(cells: List[GridCell], jobs: int) -> List[Dict[str, object]]:
    if jobs <= 1 or len(cells) <= 1:
        networks: Dict[tuple, Optional[Network]] = {}
        results = []
        for cell in cells:
            key = cell.topology_key
            if key not in networks:
                try:
                    networks[key] = build_network(cell)
                except Exception:  # noqa: BLE001 - recorded per cell below
                    networks[key] = None
            results.append(run_cell(cell, network=networks[key]))
        return results

    import multiprocessing

    from repro.experiments.sharedmem import SharedTopology

    published: Dict[tuple, SharedTopology] = {}
    tasks = []
    try:
        for cell in cells:
            key = cell.topology_key
            if key not in published:
                try:
                    published[key] = SharedTopology.publish(build_network(cell))
                except Exception:  # noqa: BLE001 - cell records the failure
                    published[key] = None  # type: ignore[assignment]
            topology = published[key]
            tasks.append((cell, topology.handle if topology else None))
        with multiprocessing.Pool(processes=min(jobs, len(cells))) as pool:
            return pool.map(_run_cell_task, tasks)
    finally:
        for topology in published.values():
            if topology is not None:
                topology.unlink()


def summarize_results(results: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate a grid run: totals per engine plus cross-engine speedups.

    The ``speedup_vs_reference`` map reports, for every non-reference
    engine, total-reference-wall / total-engine-wall over the cells where
    *both* engines succeeded on the same (family, n, program, seed) work
    item — the apples-to-apples wall-clock ratio.
    """
    per_engine: Dict[str, Dict[str, float]] = {}
    walls: Dict[tuple, Dict[str, float]] = {}
    failures = []
    for rec in results:
        cell = rec["cell"]  # type: ignore[index]
        engine = cell["engine"]  # type: ignore[index]
        agg = per_engine.setdefault(
            engine, {"cells": 0, "ok": 0, "wall_s": 0.0, "rounds": 0, "messages": 0}
        )
        agg["cells"] += 1
        if rec.get("ok"):
            metrics = rec["metrics"]  # type: ignore[index]
            agg["ok"] += 1
            agg["wall_s"] += rec["wall_s"]  # type: ignore[operator]
            agg["rounds"] += metrics["rounds"]  # type: ignore[index]
            agg["messages"] += metrics["total_messages"]  # type: ignore[index]
            item = (cell["family"], cell["n"], cell["program"], cell["seed"])  # type: ignore[index]
            walls.setdefault(item, {})[engine] = rec["wall_s"]  # type: ignore[assignment]
        else:
            failures.append({"key": rec["key"], "error": rec["error"]})
    speedups: Dict[str, float] = {}
    for engine in per_engine:
        if engine == "reference":
            continue
        ref_total = eng_total = 0.0
        for by_engine in walls.values():
            if "reference" in by_engine and engine in by_engine:
                ref_total += by_engine["reference"]
                eng_total += by_engine[engine]
        if eng_total > 0:
            speedups[engine] = round(ref_total / eng_total, 3)
    return {
        "per_engine": per_engine,
        "speedup_vs_reference": speedups,
        "failures": failures,
    }


def results_payload(
    results: Sequence[Mapping[str, object]], meta: Mapping[str, object] | None = None
) -> Dict[str, object]:
    """The canonical JSON document for one grid run."""
    return {
        "generator": "repro.experiments.runner",
        "meta": dict(meta or {}),
        "summary": summarize_results(results),
        "cells": list(results),
    }


def write_results(
    path: str | Path,
    results: Sequence[Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
) -> Path:
    """Write the grid run to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(results_payload(results, meta), indent=2) + "\n")
    return path
