"""Coin sources for the randomized executions of the rounding process.

Three kinds of coins drive :func:`repro.rounding.abstract.execute_rounding`:

* fully independent coins (a seeded :class:`random.Random`),
* ``k``-wise independent coins from a shared seed (Lemma 3.3 machinery, used
  to validate Lemmas 3.6/3.7 under limited independence in experiment E4),
* deterministic coins produced by the conditional-expectation engine
  (:mod:`repro.derand`).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Mapping

from repro.errors import RandomnessError
from repro.randomness.kwise import KWiseCoins
from repro.rounding.abstract import RoundingScheme


def independent_coins(
    scheme: RoundingScheme, rng: random.Random
) -> Callable[[int], bool]:
    """Fully independent biased coins; ``coin(u)`` succeeds w.p. ``p(u)``."""

    def coin(u: int) -> bool:
        return rng.random() < scheme.p[u]

    return coin


def kwise_coins(
    scheme: RoundingScheme,
    k: int,
    m: int = 16,
    rng: random.Random | None = None,
    seed_bits=None,
) -> Callable[[int], bool]:
    """``k``-wise independent coins from one shared seed.

    Every participating variable is assigned a distinct field point; its
    probability is snapped *down* onto the ``2^-m`` grid (the transmittable
    grid of Lemma 3.3), so realized success probabilities never exceed the
    scheme's.  Raises if the instance has more participants than ``2^m``.
    """
    participants = scheme.participating()
    if len(participants) > (1 << m):
        raise RandomnessError(
            f"{len(participants)} participants exceed field size 2^{m}"
        )
    index_of: Dict[int, int] = {u: i for i, u in enumerate(participants)}
    family = KWiseCoins(k=k, m=m, seed_bits=seed_bits, rng=rng)
    order = 1 << m
    numerators: Dict[int, int] = {
        u: int(scheme.p[u] * order) for u in participants
    }

    def coin(u: int) -> bool:
        return family.coin(index_of[u], numerators[u])

    return coin


def fixed_coins(decisions: Mapping[int, bool]) -> Callable[[int], bool]:
    """Deterministic coins from a precomputed decision map."""

    def coin(u: int) -> bool:
        return decisions[u]

    return coin
